//! Per-tenant server counters, exported as JSON and Prometheus text.
//!
//! Every counter here is a pure function of the request stream — no
//! timestamps, no throughput — so a scripted client driving a fresh server
//! twice sees byte-identical `metrics` replies, which is what lets CI
//! byte-compare smoke runs. Wall-clock rates belong to the bench driver,
//! not the server.

use koika::obs::{prom_family, prom_sample};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counters for one tenant. All counters are monotonic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Sessions created by this tenant.
    pub sessions_created: u64,
    /// Sessions closed (explicitly, or torn down after a contained panic).
    pub sessions_closed: u64,
    /// `step` / `stream-trace` requests executed.
    pub steps: u64,
    /// Simulated cycles executed on behalf of the tenant.
    pub cycles: u64,
    /// Fault injections queued.
    pub injections: u64,
    /// Sessions spilled to the snapshot spool (idle or explicit `evict`).
    pub evictions: u64,
    /// Evicted sessions transparently reloaded.
    pub rehydrations: u64,
    /// Panics contained inside this tenant's sessions (each one tore down
    /// exactly one session).
    pub panics_contained: u64,
    /// Watchdog budget trips (stall, cycle, or wall).
    pub watchdog_trips: u64,
    /// Requests shed with a `busy` reply (full table or full queue).
    pub busy_rejections: u64,
    /// Steps executed inside a packed batch lane rather than a scalar
    /// engine.
    pub packed_steps: u64,
    /// Sessions rebuilt from the state directory (journal replay) after a
    /// server restart.
    pub recovered_sessions: u64,
    /// Torn journal tails truncated back to the last durable record
    /// during recovery.
    pub journal_truncations: u64,
    /// Injected chaos faults absorbed by this tenant's durable writes.
    pub chaos_faults: u64,
}

/// All server-level counters: a per-tenant map plus process-wide totals.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    tenants: BTreeMap<String, TenantCounters>,
    /// Requests parsed and dispatched (any tenant, any op).
    pub requests: u64,
    /// Lines that failed to parse or named an unknown op.
    pub protocol_errors: u64,
}

impl ServerMetrics {
    /// The (created-on-first-use) counters for one tenant.
    pub fn tenant(&mut self, name: &str) -> &mut TenantCounters {
        self.tenants.entry(name.to_string()).or_default()
    }

    /// Read-only view of every tenant's counters, ordered by tenant name.
    pub fn tenants(&self) -> impl Iterator<Item = (&str, &TenantCounters)> {
        self.tenants.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the counters as a deterministic JSON object (tenants in
    /// name order; no timing data).
    pub fn to_json(&self, sessions_active: u64) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"sessions_active\":{sessions_active},\"requests\":{},\"protocol_errors\":{},\"tenants\":{{",
            self.requests, self.protocol_errors
        );
        for (i, (name, t)) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"sessions_created\":{},\"sessions_closed\":{},\"steps\":{},\
                 \"cycles\":{},\"injections\":{},\"evictions\":{},\"rehydrations\":{},\
                 \"panics_contained\":{},\"watchdog_trips\":{},\"busy_rejections\":{},\
                 \"packed_steps\":{},\"recovered_sessions\":{},\"journal_truncations\":{},\
                 \"chaos_faults\":{}}}",
                crate::json::escape(name),
                t.sessions_created,
                t.sessions_closed,
                t.steps,
                t.cycles,
                t.injections,
                t.evictions,
                t.rehydrations,
                t.panics_contained,
                t.watchdog_trips,
                t.busy_rejections,
                t.packed_steps,
                t.recovered_sessions,
                t.journal_truncations,
                t.chaos_faults,
            );
        }
        s.push_str("}}");
        s
    }

    /// Renders a Prometheus text exposition of the `koika_server_*`
    /// counter families, one sample per tenant per family.
    pub fn to_prometheus(&self, sessions_active: u64) -> String {
        let mut s = String::new();
        prom_family(
            &mut s,
            "koika_server_sessions_active",
            "Sessions currently resident (live or evicted).",
            "gauge",
        );
        prom_sample(&mut s, "koika_server_sessions_active", &[], sessions_active);
        prom_family(&mut s, "koika_server_requests_total", "Requests dispatched.", "counter");
        prom_sample(&mut s, "koika_server_requests_total", &[], self.requests);
        prom_family(
            &mut s,
            "koika_server_protocol_errors_total",
            "Unparseable or unknown requests.",
            "counter",
        );
        prom_sample(&mut s, "koika_server_protocol_errors_total", &[], self.protocol_errors);

        type Read = fn(&TenantCounters) -> u64;
        let families: &[(&str, &str, Read)] = &[
            ("koika_server_sessions_created_total", "Sessions created.", |t| t.sessions_created),
            ("koika_server_sessions_closed_total", "Sessions closed or torn down.", |t| {
                t.sessions_closed
            }),
            ("koika_server_steps_total", "Step requests executed.", |t| t.steps),
            ("koika_server_cycles_total", "Simulated cycles executed.", |t| t.cycles),
            ("koika_server_injections_total", "Fault injections queued.", |t| t.injections),
            ("koika_server_evictions_total", "Sessions spilled to the spool.", |t| t.evictions),
            ("koika_server_rehydrations_total", "Evicted sessions reloaded.", |t| {
                t.rehydrations
            }),
            ("koika_server_panics_contained_total", "Panics contained per tenant.", |t| {
                t.panics_contained
            }),
            ("koika_server_watchdog_trips_total", "Watchdog budget trips.", |t| {
                t.watchdog_trips
            }),
            ("koika_server_busy_rejections_total", "Requests shed with busy replies.", |t| {
                t.busy_rejections
            }),
            ("koika_server_packed_steps_total", "Steps executed in packed batch lanes.", |t| {
                t.packed_steps
            }),
            ("koika_server_recovered_sessions_total", "Sessions rebuilt by journal replay.", |t| {
                t.recovered_sessions
            }),
            (
                "koika_server_journal_truncations_total",
                "Torn journal tails truncated during recovery.",
                |t| t.journal_truncations,
            ),
            ("koika_server_chaos_faults_total", "Injected chaos faults absorbed.", |t| {
                t.chaos_faults
            }),
        ];
        for (name, help, read) in families {
            prom_family(&mut s, name, help, "counter");
            for (tenant, t) in &self.tenants {
                prom_sample(&mut s, name, &[("tenant", tenant)], read(t));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_export_is_deterministic_and_ordered() {
        let mut m = ServerMetrics::default();
        m.tenant("zeta").steps = 3;
        m.tenant("alpha").sessions_created = 2;
        m.requests = 5;
        let a = m.to_json(2);
        let b = m.to_json(2);
        assert_eq!(a, b);
        let alpha = a.find("\"alpha\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "tenants must serialize in name order");
        assert!(a.contains("\"sessions_active\":2"));
        // The export must be valid JSON by our own parser.
        crate::json::Json::parse(&a).unwrap();
    }

    #[test]
    fn prometheus_export_has_tenant_labels() {
        let mut m = ServerMetrics::default();
        m.tenant("t0").panics_contained = 1;
        let text = m.to_prometheus(1);
        assert!(text.contains("# TYPE koika_server_panics_contained_total counter"));
        assert!(text.contains("koika_server_panics_contained_total{tenant=\"t0\"} 1"));
        assert!(text.contains("koika_server_sessions_active 1"));
    }

    #[test]
    fn recovery_counters_export_in_both_formats() {
        let mut m = ServerMetrics::default();
        let t = m.tenant("t0");
        t.recovered_sessions = 4;
        t.journal_truncations = 2;
        t.chaos_faults = 9;
        let json = m.to_json(4);
        assert!(json.contains("\"recovered_sessions\":4"));
        assert!(json.contains("\"journal_truncations\":2"));
        assert!(json.contains("\"chaos_faults\":9"));
        crate::json::Json::parse(&json).unwrap();
        let prom = m.to_prometheus(4);
        assert!(prom.contains("koika_server_recovered_sessions_total{tenant=\"t0\"} 4"));
        assert!(prom.contains("koika_server_journal_truncations_total{tenant=\"t0\"} 2"));
        assert!(prom.contains("koika_server_chaos_faults_total{tenant=\"t0\"} 9"));
    }
}
