//! Seeded fault injection for chaos testing the durability stack.
//!
//! The chaos harness has two halves. The *server* half lives here: an
//! [`IoChaos`] hook installed via [`crate::ServerConfig::chaos`] is
//! consulted by every durable write (journal appends, spool and journal
//! rewrites, the read-only probe) and deterministically injects the disk
//! failure modes that matter for a write-ahead log — torn appends, short
//! atomic writes, and ENOSPC. The *client* half (dropped and duplicated
//! connections, delayed requests, mid-step panics) is driven by
//! `server_bench --chaos SEED`, which owns both sockets and the fault
//! schedule.
//!
//! Injected failures are ordinary `io::Error`s whose message starts with
//! `"chaos:"`; the server treats them exactly like real disk failures
//! (typed `read-only` degradation, never a panic) and additionally counts
//! them in the per-tenant `chaos_faults` metric. The invariants under
//! test: **zero cross-session blast radius** (a fault in one session's
//! write never corrupts another session) and **recoverability** (after
//! any injected fault, a restart from the state directory reproduces
//! exactly the state the clients observed as committed).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The xorshift64* generator used across the repo's benches: tiny, seeded,
/// and good enough to pick fault kinds and fire points.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator (a zero seed is nudged to keep the state
    /// non-degenerate).
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng((seed ^ 0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A disk failure mode injected into one durable write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// A journal append that writes part of its record before failing;
    /// the server must truncate the torn bytes back before continuing.
    TornWrite,
    /// An atomic (temp + rename) write that leaves a partial `*.tmp`
    /// behind and never reaches the rename; the destination file must
    /// stay intact.
    ShortWrite,
    /// The write fails up front with nothing on disk (disk full).
    Enospc,
}

impl IoFault {
    /// Stable label used in error messages and fault-count tables.
    pub fn label(self) -> &'static str {
        match self {
            IoFault::TornWrite => "torn-write",
            IoFault::ShortWrite => "short-write",
            IoFault::Enospc => "enospc",
        }
    }
}

/// Deterministic, seeded io fault injector shared by every durable write
/// site in the server. `None` in [`crate::ServerConfig::chaos`] (the
/// default) means no instrumentation at all.
pub struct IoChaos {
    /// Fire on every `every`-th consulted write; 0 disables injection.
    every: AtomicU64,
    /// Writes consulted so far.
    counter: AtomicU64,
    /// When set, every consult fires this fault regardless of `every`
    /// (used by tests to hold the server in read-only mode).
    forced: Mutex<Option<IoFault>>,
    rng: Mutex<ChaosRng>,
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl IoChaos {
    /// A seeded injector firing on every `every`-th durable write.
    pub fn new(seed: u64, every: u64) -> IoChaos {
        IoChaos {
            every: AtomicU64::new(every),
            counter: AtomicU64::new(0),
            forced: Mutex::new(None),
            rng: Mutex::new(ChaosRng::new(seed)),
            counts: Mutex::new(BTreeMap::new()),
        }
    }

    /// An injector that fails **every** durable write with `fault` until
    /// [`IoChaos::clear_forced`]; used to test read-only degradation.
    pub fn forced(fault: IoFault) -> IoChaos {
        let c = IoChaos::new(0, 0);
        *c.forced.lock().unwrap_or_else(|e| e.into_inner()) = Some(fault);
        c
    }

    /// Stops the [`IoChaos::forced`] failure mode ("the disk recovered").
    pub fn clear_forced(&self) {
        *self.forced.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Re-tunes the fire period (0 disables random injection).
    pub fn set_every(&self, every: u64) {
        self.every.store(every, Ordering::SeqCst);
    }

    /// Called by a durable write site before touching the disk. Returns
    /// the fault to simulate for this write, if any; firing is counted in
    /// [`IoChaos::counts`].
    pub fn next_fault(&self) -> Option<IoFault> {
        if let Some(f) = *self.forced.lock().unwrap_or_else(|e| e.into_inner()) {
            self.note(f.label());
            return Some(f);
        }
        let every = self.every.load(Ordering::SeqCst);
        if every == 0 {
            return None;
        }
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if !n.is_multiple_of(every) {
            return None;
        }
        let pick = self.rng.lock().unwrap_or_else(|e| e.into_inner()).below(3);
        let fault = match pick {
            0 => IoFault::TornWrite,
            1 => IoFault::ShortWrite,
            _ => IoFault::Enospc,
        };
        self.note(fault.label());
        Some(fault)
    }

    /// Records one occurrence of a fault kind. Server-side io faults are
    /// noted by [`IoChaos::next_fault`]; the bench's client-side kinds
    /// (dropped/duplicated connections, delays, mid-step panics) call this
    /// directly so one table holds the whole fault mix.
    pub fn note(&self, label: &'static str) {
        *self
            .counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(label)
            .or_insert(0) += 1;
    }

    /// Fault counts by kind label, in label order.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = ChaosRng::new(0xC0FFEE);
        let mut b = ChaosRng::new(0xC0FFEE);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaosRng::new(0xC0FFEF);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fires_every_nth_write_and_counts_by_kind() {
        let chaos = IoChaos::new(7, 3);
        let fired: Vec<bool> = (0..12).map(|_| chaos.next_fault().is_some()).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 4);
        assert!(fired[2]);
        assert!(!fired[0]);
        let total: u64 = chaos.counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn forced_mode_fires_until_cleared() {
        let chaos = IoChaos::forced(IoFault::Enospc);
        assert_eq!(chaos.next_fault(), Some(IoFault::Enospc));
        assert_eq!(chaos.next_fault(), Some(IoFault::Enospc));
        chaos.clear_forced();
        assert_eq!(chaos.next_fault(), None);
        assert_eq!(chaos.counts(), vec![("enospc", 2)]);
    }
}
