//! Sessions as data: the session table, the eviction spool, and the
//! compiled-engine pools.
//!
//! A session is **not** a live simulator. Its canonical state is a
//! [`Snapshot`] plus one serialized blob per device — pure data. Each
//! `step` request checks a compiled engine out of a per-design pool,
//! restores the snapshot into it, rebuilds the devices from their blobs,
//! runs, and commits a fresh snapshot back. This is what makes the
//! robustness features cheap:
//!
//! * **eviction** just writes the data to a spool file and drops it from
//!   memory — there is no thread to park or engine to keep warm;
//! * **panic containment** never leaves a half-mutated session behind —
//!   the commit happens only after a step fully succeeds, so a contained
//!   panic (or a retried wall trip) observes the pre-step state intact;
//! * **batch packing** is free to run a session's step on a completely
//!   different engine (a [`BatchSim`] lane), because all engines restore
//!   from and produce the same portable snapshots.
//!
//! The armed watchdog stays in memory even while a session is evicted —
//! it is a few dozen bytes, and keeping it live (paused) is what makes
//! the wall budget exclude evicted time without any serialization of
//! [`std::time::Instant`]s.

use crate::journal::Journal;
use cuttlesim::batch::BatchSim;
use cuttlesim::{CompileOptions, Sim};
use koika::device::{Device, SimBackend};
use koika::fault::{ArmedWatchdog, Injection};
use koika::interp::Interp;
use koika::snapshot::Snapshot;
use koika::tir::TDesign;
use std::collections::{HashMap, VecDeque};
use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Resolves design names for `create` requests and builds their devices.
///
/// The server is design-agnostic: the embedder (the CLI with its bundled
/// designs, a test with a deliberately poisoned device) decides what a
/// name means. Names are opaque to the server, so a provider is free to
/// encode a workload in them (the CLI accepts `rv32i+primes:8`).
pub trait DesignProvider: Send + Sync {
    /// The typed design a name refers to, or `None` for unknown names.
    fn design(&self, name: &str) -> Option<Arc<TDesign>>;

    /// Fresh device instances for a new step of a session of this design.
    ///
    /// Called once per step (device state is carried between steps as
    /// [`Device::save_state`] blobs), so this must be cheap and
    /// deterministic.
    fn devices(&self, name: &str, td: &TDesign) -> Vec<Box<dyn Device + Send>>;
}

/// Which scalar engine a session steps on when it is not batch-packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The reference interpreter — always available, any register width.
    Interp,
    /// The optimized Cuttlesim VM (requires registers ≤ 64 bits).
    Cuttlesim,
}

impl BackendKind {
    /// Parses the protocol's `backend` field.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "interp" => Some(BackendKind::Interp),
            "cuttlesim" => Some(BackendKind::Cuttlesim),
            _ => None,
        }
    }

    /// The protocol name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Cuttlesim => "cuttlesim",
        }
    }
}

/// A session's idempotency window: the most recent client-supplied
/// `req_id`s and the reply each one produced. A client that lost its
/// connection mid-request re-submits with the same `req_id` and receives
/// the cached reply instead of applying the op twice (at-most-once).
pub type ReqWindow = VecDeque<(u64, String)>;

/// Bound on entries kept per session in a [`ReqWindow`].
pub const REQ_WINDOW: usize = 32;

/// The cached reply for a previously applied `req_id`, if any.
pub fn req_cached(win: &ReqWindow, req_id: u64) -> Option<String> {
    win.iter()
        .find(|(id, _)| *id == req_id)
        .map(|(_, reply)| reply.clone())
}

/// Caches a reply under `req_id`, evicting the oldest entry past the
/// window bound.
pub fn req_store(win: &mut ReqWindow, req_id: u64, reply: String) {
    req_store_bounded(win, req_id, reply, REQ_WINDOW);
}

/// [`req_store`] with an explicit bound (the server-wide `create` window
/// is larger than a per-session one).
pub fn req_store_bounded(win: &mut ReqWindow, req_id: u64, reply: String, cap: usize) {
    win.retain(|(id, _)| *id != req_id);
    win.push_back((req_id, reply));
    while win.len() > cap {
        win.pop_front();
    }
}

/// The in-memory body of a resident (non-evicted) session.
pub struct SessionBody {
    /// Provider key this session was created from (may encode a workload).
    pub design_name: String,
    /// The checked design.
    pub td: Arc<TDesign>,
    /// Scalar engine choice.
    pub backend: BackendKind,
    /// Canonical simulator state at the current cycle boundary.
    pub snap: Snapshot,
    /// One serialized state blob per device (`None` for stateless devices).
    pub dev_blobs: Vec<Option<Vec<u8>>>,
    /// Armed budgets; paused whenever the session is not actively stepping.
    pub watchdog: Option<ArmedWatchdog>,
    /// Injections waiting for their cycle to come up.
    pub pending: Vec<Injection>,
    /// Owning tenant, for metrics attribution.
    pub tenant: String,
    /// Last time any request touched this session (drives idle eviction).
    pub last_touch: Instant,
    /// Write-ahead journal when the server runs durably (`--state-dir`);
    /// `None` otherwise. Travels with the session through eviction,
    /// step checkout, and rehydration.
    pub journal: Option<Journal>,
    /// Recently applied `req_id`s and their replies (idempotent
    /// re-submission after a disconnect).
    pub recent: ReqWindow,
}

/// The spilled remainder of an evicted session: everything that is cheap
/// to keep in memory. The heavy state (registers, device blobs) lives in
/// the spool file at `path`.
pub struct EvictedStub {
    /// See [`SessionBody::design_name`].
    pub design_name: String,
    /// See [`SessionBody::td`].
    pub td: Arc<TDesign>,
    /// See [`SessionBody::backend`].
    pub backend: BackendKind,
    /// See [`SessionBody::tenant`].
    pub tenant: String,
    /// The paused watchdog — kept live so evicted time never counts
    /// against the wall budget.
    pub watchdog: Option<ArmedWatchdog>,
    /// See [`SessionBody::pending`].
    pub pending: Vec<Injection>,
    /// Cycle count at eviction time, so `inject` can validate cycles
    /// without rehydrating.
    pub cycles: u64,
    /// Spool file holding the snapshot and device blobs.
    pub path: PathBuf,
    /// See [`SessionBody::journal`].
    pub journal: Option<Journal>,
    /// See [`SessionBody::recent`].
    pub recent: ReqWindow,
}

/// One slot in the session table.
pub enum SessionSlot {
    /// Resident in memory.
    Live(Box<SessionBody>),
    /// Spilled to the spool; rehydrated on next touch.
    Evicted(Box<EvictedStub>),
    /// Checked out into the step queue; concurrent requests get a
    /// `session-busy` reply instead of racing.
    Running { tenant: String },
}

/// The bounded session table. All access is behind the server's mutex;
/// operations here are pure data structure manipulation.
#[derive(Default)]
pub struct SessionTable {
    slots: HashMap<u64, SessionSlot>,
}

impl SessionTable {
    /// Number of sessions resident (live, evicted, or running).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Inserts a new session; the caller has already enforced the bound.
    pub fn insert(&mut self, id: u64, body: Box<SessionBody>) {
        self.slots.insert(id, SessionSlot::Live(body));
    }

    /// Removes a session in any state, returning it.
    pub fn remove(&mut self, id: u64) -> Option<SessionSlot> {
        self.slots.remove(&id)
    }

    /// Direct access to a slot.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut SessionSlot> {
        self.slots.get_mut(&id)
    }

    /// Replaces a slot wholesale (used to check sessions in and out).
    pub fn put(&mut self, id: u64, slot: SessionSlot) {
        self.slots.insert(id, slot);
    }

    /// Ids of live sessions idle longer than `idle` as of `now`.
    pub fn idle_candidates(&self, now: Instant, idle: std::time::Duration) -> Vec<u64> {
        self.slots
            .iter()
            .filter_map(|(&id, slot)| match slot {
                SessionSlot::Live(b) if now.duration_since(b.last_touch) >= idle => Some(id),
                _ => None,
            })
            .collect()
    }

    /// Ids of every session, in ascending order (deterministic iteration
    /// for drain).
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// One serialized state blob per device (`None` for stateless devices).
pub type DeviceBlobs = Vec<Option<Vec<u8>>>;

/// Magic bytes opening a spool file (a `.ksnap` snapshot plus device
/// blobs).
pub const SPOOL_MAGIC: [u8; 4] = *b"KSES";

/// Serializes a session's heavy state for the eviction spool.
///
/// Layout: `"KSES"` · `ksnap_len:u32` · ksnap bytes · `ndev:u32` · per
/// device `has:u8` and, when present, `len:u32` + bytes. All integers
/// little-endian, like the `.ksnap` format it embeds.
pub fn spool_bytes(snap: &Snapshot, dev_blobs: &[Option<Vec<u8>>]) -> Vec<u8> {
    let ksnap = snap.to_bytes();
    let mut out = Vec::with_capacity(ksnap.len() + 64);
    out.extend_from_slice(&SPOOL_MAGIC);
    out.extend_from_slice(&(ksnap.len() as u32).to_le_bytes());
    out.extend_from_slice(&ksnap);
    out.extend_from_slice(&(dev_blobs.len() as u32).to_le_bytes());
    for blob in dev_blobs {
        match blob {
            Some(bytes) => {
                out.push(1);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            None => out.push(0),
        }
    }
    out
}

/// Parses a spool file written by [`spool_bytes`].
///
/// # Errors
///
/// A human-readable message on truncation or corruption — spool files are
/// server-written, but a message still beats a panic if the spool
/// directory is tampered with.
pub fn parse_spool(bytes: &[u8]) -> Result<(Snapshot, DeviceBlobs), String> {
    fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
        if buf.len() < n {
            return Err("spool file truncated".into());
        }
        let (head, rest) = buf.split_at(n);
        *buf = rest;
        Ok(head)
    }
    fn take_u32(buf: &mut &[u8]) -> Result<usize, String> {
        Ok(u32::from_le_bytes(take(buf, 4)?.try_into().expect("length checked")) as usize)
    }
    let mut buf = bytes;
    if take(&mut buf, 4)? != SPOOL_MAGIC {
        return Err("not a session spool file (bad magic)".into());
    }
    let ksnap_len = take_u32(&mut buf)?;
    let snap = Snapshot::from_bytes(take(&mut buf, ksnap_len)?)
        .map_err(|e| format!("embedded snapshot: {e}"))?;
    let ndev = take_u32(&mut buf)?;
    if ndev > bytes.len() {
        return Err("device count exceeds stream size".into());
    }
    let mut blobs = Vec::with_capacity(ndev);
    for _ in 0..ndev {
        let has = take(&mut buf, 1)?[0];
        if has == 1 {
            let len = take_u32(&mut buf)?;
            blobs.push(Some(take(&mut buf, len)?.to_vec()));
        } else {
            blobs.push(None);
        }
    }
    Ok((snap, blobs))
}

/// Writes a session's heavy state to its spool file, crash-atomically
/// (temp + fsync + rename): a crash mid-evict leaves either no spool or
/// the complete previous one, never a torn KSES file that would poison
/// rehydration.
pub fn spill(body: &SessionBody, path: &Path) -> std::io::Result<()> {
    koika::snapshot::write_atomic(path, &spool_bytes(&body.snap, &body.dev_blobs))
}

/// Reads a spool file back. When `keep` is false (a plain eviction
/// spool) the file is removed on success; durable servers pass `true`
/// because the file doubles as the journal's checkpoint base and must
/// survive until the next checkpoint supersedes it.
pub fn unspill(path: &Path, keep: bool) -> Result<(Snapshot, DeviceBlobs), String> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("reading spool file {}: {e}", path.display()))?;
    let parsed = parse_spool(&bytes)?;
    if !keep {
        let _ = std::fs::remove_file(path);
    }
    Ok(parsed)
}

/// Pools of compiled engines, keyed by design. Compiling a design is the
/// expensive part of a step; pooling amortizes it across every session of
/// that design. Engines carry no session state between checkouts — each
/// step restores a snapshot before running.
#[derive(Default)]
pub struct EnginePool {
    scalar: HashMap<(String, BackendKind), Vec<Box<dyn SimBackend + Send>>>,
    batch: HashMap<(String, usize), Vec<BatchSim>>,
}

impl EnginePool {
    /// Checks out (or compiles) a scalar engine for a design.
    ///
    /// # Errors
    ///
    /// Compilation errors, e.g. a >64-bit register on the Cuttlesim
    /// backend.
    pub fn checkout_scalar(
        &mut self,
        name: &str,
        td: &TDesign,
        kind: BackendKind,
    ) -> Result<Box<dyn SimBackend + Send>, String> {
        if let Some(engine) = self
            .scalar
            .get_mut(&(name.to_string(), kind))
            .and_then(Vec::pop)
        {
            return Ok(engine);
        }
        Ok(match kind {
            BackendKind::Interp => Box::new(Interp::new(td)),
            BackendKind::Cuttlesim => Box::new(
                Sim::compile_with(td, &CompileOptions::default())
                    .map_err(|e| format!("cuttlesim compile error: {e}"))?,
            ),
        })
    }

    /// Returns a scalar engine to the pool. Engines that panicked are
    /// simply dropped by the unwinding step instead of being checked in.
    pub fn checkin_scalar(&mut self, name: &str, kind: BackendKind, engine: Box<dyn SimBackend + Send>) {
        self.scalar
            .entry((name.to_string(), kind))
            .or_default()
            .push(engine);
    }

    /// Checks out (or compiles) a batch engine with the given lane count.
    ///
    /// # Errors
    ///
    /// Compilation errors (see [`EnginePool::checkout_scalar`]).
    pub fn checkout_batch(
        &mut self,
        name: &str,
        td: &TDesign,
        lanes: usize,
    ) -> Result<BatchSim, String> {
        if let Some(engine) = self
            .batch
            .get_mut(&(name.to_string(), lanes))
            .and_then(Vec::pop)
        {
            return Ok(engine);
        }
        BatchSim::compile(td, lanes).map_err(|e| format!("batch compile error: {e}"))
    }

    /// Returns a batch engine to the pool.
    pub fn checkin_batch(&mut self, name: &str, lanes: usize, engine: BatchSim) {
        self.batch.entry((name.to_string(), lanes)).or_default().push(engine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::bits::Bits;

    fn snap() -> Snapshot {
        Snapshot {
            design: "d".into(),
            cycles: 7,
            fired: 5,
            fingerprint: 0xfeed,
            fired_per_rule: vec![3, 2],
            regs: vec![Bits::new(8, 0x42u64), Bits::new(96, 1u128 << 70)],
        }
    }

    #[test]
    fn spool_round_trips_snapshot_and_blobs() {
        let blobs = vec![Some(vec![1, 2, 3]), None, Some(Vec::new())];
        let bytes = spool_bytes(&snap(), &blobs);
        assert_eq!(&bytes[..4], b"KSES");
        let (s2, b2) = parse_spool(&bytes).unwrap();
        assert_eq!(s2, snap());
        assert_eq!(b2, blobs);
    }

    #[test]
    fn req_window_caches_and_evicts_oldest() {
        let mut win = ReqWindow::new();
        req_store(&mut win, 1, "a".into());
        req_store(&mut win, 1, "a2".into());
        assert_eq!(req_cached(&win, 1).as_deref(), Some("a2"));
        for i in 2..=(REQ_WINDOW as u64 + 1) {
            req_store(&mut win, i, format!("r{i}"));
        }
        assert_eq!(win.len(), REQ_WINDOW);
        assert_eq!(req_cached(&win, 1), None, "oldest entry evicted");
        assert!(req_cached(&win, REQ_WINDOW as u64 + 1).is_some());
    }

    #[test]
    fn spool_rejects_corruption_without_panicking() {
        let good = spool_bytes(&snap(), &[Some(vec![9])]);
        assert!(parse_spool(b"XXXX").is_err());
        for cut in [0, 3, 7, good.len() - 1] {
            assert!(parse_spool(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_magic = good.clone();
        bad_magic[0] = b'Z';
        assert!(parse_spool(&bad_magic).is_err());
    }
}
