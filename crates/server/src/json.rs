//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace vendors no serialization crates (the build environment
//! has no registry access), so the server parses requests with a small
//! recursive-descent parser and writes replies by hand, exactly like
//! [`koika::obs::Metrics::to_json`] does. The parser accepts the JSON the
//! protocol needs — objects, arrays, strings with escapes, integers,
//! floats, booleans, null — and rejects everything else with a message
//! rather than a panic, because every byte of it is attacker-adjacent
//! input from a socket.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional part that fits an `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value from the whole input (trailing garbage is an
    /// error).
    ///
    /// # Errors
    ///
    /// A human-readable message pointing at the first offending byte.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected byte {:?} at {}", other as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| "bad \\u escape".to_string())?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err("control byte in string".into()),
                Some(_) => {
                    // Copy a full UTF-8 scalar in one go.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = s.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or("truncated \\u escape")?;
            let d = (b as char).to_digit(16).ok_or("bad hex in \\u escape")?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lowercase hex encoding (used to carry `.ksnap` bytes over the protocol).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex bytes.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = Json::parse(r#"{"op":"step","session":3,"n":100}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("step"));
        assert_eq!(v.get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(100));

        let v = Json::parse(r#"{"a":[1,2.5,true,null,"x\n\u0041"]}"#).unwrap();
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Int(1));
                assert_eq!(items[1], Json::Num(2.5));
                assert_eq!(items[2], Json::Bool(true));
                assert_eq!(items[3], Json::Null);
                assert_eq!(items[4], Json::Str("x\nA".into()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\"}", "{\"a\":}", "nul", "\"unterminated",
            "{\"a\":1}x", "\u{1}", "{\"k\":\"\\q\"}", "--5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let wire = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = Json::parse(&wire).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn hex_round_trips() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let h = hex_encode(&data);
        assert_eq!(hex_decode(&h).as_deref(), Some(data.as_slice()));
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
    }
}
