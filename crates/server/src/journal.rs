//! Per-session write-ahead journals: the durability half of crash
//! recovery.
//!
//! # Why a journal?
//!
//! A session's canonical state is pure data (snapshot + device blobs),
//! and stepping it is **deterministic**: given the design, the backend,
//! the devices, and the pending injections, replaying `step n` commits
//! byte-identical state every time (the differential-fuzz matrix and the
//! batch-packing proofs already rest on this). So durability does not
//! require writing megabytes of register state on every request — it is
//! enough to record the *operations*. Recovery is then: load the newest
//! checkpoint spool, deterministically re-execute the journal tail, and
//! the recovered registers and commit fingerprints are byte-identical to
//! an uninterrupted run.
//!
//! # File format (`session-<id>.kjrn`)
//!
//! ```text
//! header  := "KJRN" version:u32 session_id:u64
//! record  := len:u32 payload crc:u32        (crc32/IEEE over payload)
//! payload := seq:u64 flags:u8 [req_id:u64] tag:u8 fields…
//! ```
//!
//! All integers little-endian, like the `.ksnap` format the spools embed.
//! `seq` is strictly monotonic per session. `flags` bit 0 marks a
//! client-supplied `req_id` (the idempotency window is rebuilt from these
//! on recovery). Ops: `1`=create, `2`=step, `3`=inject, `4`=restore,
//! `5`=checkpoint, `6`=rollback, `7`=close.
//!
//! # Write-ahead discipline and torn tails
//!
//! Every state-mutating op is appended (write + fsync) **before** it
//! executes. A crash can therefore leave at most one torn record at the
//! tail; [`read_journal`] stops at the first frame whose length, CRC, or
//! payload does not check out and reports the durable prefix, and
//! recovery truncates the file back to it. A partial op is never
//! replayed. Mutations that turn out to commit nothing (a wall-budget
//! trip after exhausted retries, a deterministic step failure) append a
//! `rollback` record so replay skips them.
//!
//! # Checkpoint protocol
//!
//! A checkpoint bounds the replay tail. It writes the session's heavy
//! state to `session-<id>-<seq>.kses` (crash-atomically, via
//! [`koika::snapshot::write_atomic`]) and then atomically **rewrites**
//! the journal as `header · create · checkpoint{seq}`. The journal
//! rename is the commit point: before it, the old journal plus the old
//! spool are authoritative (the new spool is an ignorable orphan); after
//! it, the new checkpoint is. The checkpoint record carries everything
//! the spool does not: the consecutive-stall counter of the armed
//! watchdog and the still-pending injections.

use crate::chaos::{IoChaos, IoFault};
use crate::session::BackendKind;
use koika::fault::{Injection, Watchdog};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic bytes opening a journal file.
pub const JOURNAL_MAGIC: [u8; 4] = *b"KJRN";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Sanity bound on a single record's payload (a restore carries a whole
/// `.ksnap`, so this must comfortably exceed the server's 1 MiB request
/// line cap).
pub const MAX_RECORD: usize = 8 << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial) over `bytes`. Implemented
/// bitwise — records are small and this avoids a table or a dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The watchdog budgets of a `create`, in a serialization-friendly form
/// (`wall_ms` instead of a `Duration`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogSpec {
    pub max_cycles: Option<u64>,
    pub stall_cycles: Option<u64>,
    pub wall_ms: Option<u64>,
}

impl WatchdogSpec {
    /// Captures a [`Watchdog`] (sub-millisecond wall budgets round down).
    pub fn from_watchdog(wd: &Watchdog) -> WatchdogSpec {
        WatchdogSpec {
            max_cycles: wd.max_cycles,
            stall_cycles: wd.stall_cycles,
            wall_ms: wd.wall_budget.map(|d| d.as_millis() as u64),
        }
    }

    /// The [`Watchdog`] this spec describes.
    pub fn to_watchdog(&self) -> Watchdog {
        Watchdog {
            max_cycles: self.max_cycles,
            stall_cycles: self.stall_cycles,
            wall_budget: self.wall_ms.map(Duration::from_millis),
        }
    }

    /// The deterministic budgets only (wall disabled) — what replay arms:
    /// wall trips are machine-dependent and every wall trip that stuck
    /// was journaled as a rollback, so replaying without a wall budget
    /// reproduces the committed state exactly.
    pub fn deterministic_watchdog(&self) -> Watchdog {
        Watchdog {
            max_cycles: self.max_cycles,
            stall_cycles: self.stall_cycles,
            wall_budget: None,
        }
    }
}

/// One journaled operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// Session birth: everything needed to rebuild the session from
    /// nothing (the design provider re-derives initial device state).
    Create {
        design: String,
        tenant: String,
        backend: BackendKind,
        watchdog: WatchdogSpec,
    },
    /// `step` / `stream-trace` of `n` cycles.
    Step { n: u64 },
    /// A validated injection queued for a future cycle.
    Inject { cycle: u64, reg: u32, bit: u32 },
    /// A `restore` with the raw `.ksnap` bytes that were applied.
    Restore { ksnap: Vec<u8> },
    /// State as of this record lives in `session-<id>-<seq>.kses`;
    /// `stalled` and `pending` carry the in-memory remainder.
    Checkpoint {
        cycles: u64,
        stalled: u64,
        pending: Vec<(u64, u32, u32)>,
    },
    /// The op journaled as `of_seq` committed nothing (wall trip after
    /// exhausted retries, or a deterministic failure); replay skips it.
    Rollback { of_seq: u64 },
    /// The session was closed; recovery deletes its files instead of
    /// resurrecting it.
    Close,
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    pub seq: u64,
    pub req_id: Option<u64>,
    pub op: JournalOp,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
        None => out.push(0),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a record as a framed `len · payload · crc` byte string.
pub fn encode_frame(rec: &JournalRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    put_u64(&mut p, rec.seq);
    match rec.req_id {
        Some(r) => {
            p.push(1);
            put_u64(&mut p, r);
        }
        None => p.push(0),
    }
    match &rec.op {
        JournalOp::Create {
            design,
            tenant,
            backend,
            watchdog,
        } => {
            p.push(1);
            put_str(&mut p, design);
            put_str(&mut p, tenant);
            p.push(match backend {
                BackendKind::Interp => 0,
                BackendKind::Cuttlesim => 1,
            });
            put_opt_u64(&mut p, watchdog.max_cycles);
            put_opt_u64(&mut p, watchdog.stall_cycles);
            put_opt_u64(&mut p, watchdog.wall_ms);
        }
        JournalOp::Step { n } => {
            p.push(2);
            put_u64(&mut p, *n);
        }
        JournalOp::Inject { cycle, reg, bit } => {
            p.push(3);
            put_u64(&mut p, *cycle);
            put_u32(&mut p, *reg);
            put_u32(&mut p, *bit);
        }
        JournalOp::Restore { ksnap } => {
            p.push(4);
            put_u32(&mut p, ksnap.len() as u32);
            p.extend_from_slice(ksnap);
        }
        JournalOp::Checkpoint {
            cycles,
            stalled,
            pending,
        } => {
            p.push(5);
            put_u64(&mut p, *cycles);
            put_u64(&mut p, *stalled);
            put_u32(&mut p, pending.len() as u32);
            for (c, r, b) in pending {
                put_u64(&mut p, *c);
                put_u32(&mut p, *r);
                put_u32(&mut p, *b);
            }
        }
        JournalOp::Rollback { of_seq } => {
            p.push(6);
            put_u64(&mut p, *of_seq);
        }
        JournalOp::Close => p.push(7),
    }
    let mut out = Vec::with_capacity(p.len() + 8);
    put_u32(&mut out, p.len() as u32);
    let crc = crc32(&p);
    out.extend_from_slice(&p);
    put_u32(&mut out, crc);
    out
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.0.len() < n {
            return Err("record payload truncated".into());
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u64()?),
        })
    }
    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        if len > MAX_RECORD {
            return Err("string length out of range".into());
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "invalid utf-8".into())
    }
}

fn decode_payload(payload: &[u8]) -> Result<JournalRecord, String> {
    let mut c = Cursor(payload);
    let seq = c.u64()?;
    let req_id = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        f => return Err(format!("unknown flags byte {f}")),
    };
    let tag = c.u8()?;
    let op = match tag {
        1 => {
            let design = c.string()?;
            let tenant = c.string()?;
            let backend = match c.u8()? {
                0 => BackendKind::Interp,
                1 => BackendKind::Cuttlesim,
                b => return Err(format!("unknown backend byte {b}")),
            };
            JournalOp::Create {
                design,
                tenant,
                backend,
                watchdog: WatchdogSpec {
                    max_cycles: c.opt_u64()?,
                    stall_cycles: c.opt_u64()?,
                    wall_ms: c.opt_u64()?,
                },
            }
        }
        2 => JournalOp::Step { n: c.u64()? },
        3 => JournalOp::Inject {
            cycle: c.u64()?,
            reg: c.u32()?,
            bit: c.u32()?,
        },
        4 => {
            let len = c.u32()? as usize;
            if len > MAX_RECORD {
                return Err("ksnap length out of range".into());
            }
            JournalOp::Restore {
                ksnap: c.take(len)?.to_vec(),
            }
        }
        5 => {
            let cycles = c.u64()?;
            let stalled = c.u64()?;
            let count = c.u32()? as usize;
            if count > MAX_RECORD / 16 {
                return Err("pending count out of range".into());
            }
            let mut pending = Vec::with_capacity(count);
            for _ in 0..count {
                pending.push((c.u64()?, c.u32()?, c.u32()?));
            }
            JournalOp::Checkpoint {
                cycles,
                stalled,
                pending,
            }
        }
        6 => JournalOp::Rollback { of_seq: c.u64()? },
        7 => JournalOp::Close,
        t => return Err(format!("unknown op tag {t}")),
    };
    if !c.0.is_empty() {
        return Err("trailing bytes after record payload".into());
    }
    Ok(JournalRecord { seq, req_id, op })
}

/// A parsed journal: the durable record prefix plus what (if anything)
/// had to be dropped from the tail.
#[derive(Debug)]
pub struct ParsedJournal {
    /// Session id from the header.
    pub session_id: u64,
    /// Records of the durable prefix, in order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the durable prefix (header + intact records);
    /// recovery truncates the file to this.
    pub durable_len: u64,
    /// True when bytes past `durable_len` existed but did not form an
    /// intact record (a torn tail from a crash mid-append).
    pub truncated: bool,
}

/// Parses journal bytes, tolerating a torn tail.
///
/// The scan stops at the first frame whose length prefix, CRC, payload
/// decoding, or sequence monotonicity fails; everything before it is the
/// durable prefix. This never panics on arbitrary input.
///
/// # Errors
///
/// Only an unusable *header* (wrong magic or version) is a typed error —
/// there is no durable prefix to fall back to.
pub fn parse_journal_bytes(bytes: &[u8]) -> Result<ParsedJournal, String> {
    if bytes.len() < 16 {
        return Err("journal file shorter than its header".into());
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err("not a journal file (bad magic)".into());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("length checked"));
    if version != JOURNAL_VERSION {
        return Err(format!("unsupported journal version {version}"));
    }
    let session_id = u64::from_le_bytes(bytes[8..16].try_into().expect("length checked"));
    let mut records = Vec::new();
    let mut pos = 16usize;
    let mut last_seq: Option<u64> = None;
    loop {
        if pos == bytes.len() {
            return Ok(ParsedJournal {
                session_id,
                records,
                durable_len: pos as u64,
                truncated: false,
            });
        }
        let intact = (|| -> Option<(JournalRecord, usize)> {
            let len_end = pos.checked_add(4)?;
            if len_end > bytes.len() {
                return None;
            }
            let len = u32::from_le_bytes(bytes[pos..len_end].try_into().ok()?) as usize;
            if len > MAX_RECORD {
                return None;
            }
            let crc_end = len_end.checked_add(len)?.checked_add(4)?;
            if crc_end > bytes.len() {
                return None;
            }
            let payload = &bytes[len_end..len_end + len];
            let crc = u32::from_le_bytes(bytes[len_end + len..crc_end].try_into().ok()?);
            if crc32(payload) != crc {
                return None;
            }
            let rec = decode_payload(payload).ok()?;
            if let Some(prev) = last_seq {
                if rec.seq <= prev {
                    return None;
                }
            }
            Some((rec, crc_end))
        })();
        match intact {
            Some((rec, next)) => {
                last_seq = Some(rec.seq);
                records.push(rec);
                pos = next;
            }
            None => {
                return Ok(ParsedJournal {
                    session_id,
                    records,
                    durable_len: pos as u64,
                    truncated: true,
                });
            }
        }
    }
}

/// Reads and parses a journal file. See [`parse_journal_bytes`].
///
/// # Errors
///
/// Unreadable file or unusable header.
pub fn read_journal(path: &Path) -> Result<ParsedJournal, String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("reading journal {}: {e}", path.display()))?;
    parse_journal_bytes(&bytes)
}

/// The journal file for a session.
pub fn journal_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("session-{id}.kjrn"))
}

/// The checkpoint spool named by a checkpoint record's sequence number.
pub fn spool_path(dir: &Path, id: u64, seq: u64) -> PathBuf {
    dir.join(format!("session-{id}-{seq}.kses"))
}

/// Writes `bytes` to `path` atomically, first consulting the chaos hook.
/// Injected faults mimic the real thing: a short write leaves a partial
/// `*.tmp` (the destination stays intact), ENOSPC writes nothing. Error
/// messages from injected faults start with `"chaos:"`.
pub fn write_checked(chaos: Option<&IoChaos>, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(fault) = chaos.and_then(IoChaos::next_fault) {
        match fault {
            IoFault::TornWrite | IoFault::ShortWrite => {
                let mut tmp = path.as_os_str().to_owned();
                tmp.push(".tmp");
                let cut = bytes.len() / 2;
                let _ = std::fs::write(tmp, &bytes[..cut]);
                return Err(std::io::Error::other(format!(
                    "chaos: {} during atomic write (injected)",
                    fault.label()
                )));
            }
            IoFault::Enospc => {
                return Err(std::io::Error::other(
                    "chaos: enospc during atomic write (injected)",
                ));
            }
        }
    }
    koika::snapshot::write_atomic(path, bytes)
}

/// The append-side handle to one session's journal. No file descriptor is
/// held between operations: appends reopen the file, which keeps the
/// handle valid across the atomic rename a checkpoint performs and keeps
/// a durable server's fd footprint flat regardless of session count.
pub struct Journal {
    path: PathBuf,
    /// Framed bytes of the header + create record, replayed verbatim into
    /// every checkpoint rewrite so a journal is always self-describing.
    base: Vec<u8>,
    next_seq: u64,
    durable_len: u64,
}

impl Journal {
    /// Creates a fresh journal containing the header and the `create`
    /// record, written atomically (the journal's existence *is* the
    /// session's durability).
    ///
    /// # Errors
    ///
    /// Disk failures (or injected chaos faults).
    pub fn create(
        dir: &Path,
        id: u64,
        create: &JournalRecord,
        chaos: Option<&IoChaos>,
    ) -> std::io::Result<Journal> {
        debug_assert!(matches!(create.op, JournalOp::Create { .. }));
        let mut base = Vec::with_capacity(64);
        base.extend_from_slice(&JOURNAL_MAGIC);
        base.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        base.extend_from_slice(&id.to_le_bytes());
        base.extend_from_slice(&encode_frame(create));
        let path = journal_path(dir, id);
        write_checked(chaos, &path, &base)?;
        Ok(Journal {
            path,
            durable_len: base.len() as u64,
            next_seq: create.seq + 1,
            base,
        })
    }

    /// Reattaches to a journal parsed during recovery. `parsed` must hold
    /// at least the create record; the file on disk must already be
    /// truncated to `parsed.durable_len`.
    pub fn reattach(dir: &Path, parsed: &ParsedJournal) -> Journal {
        let mut base = Vec::with_capacity(64);
        base.extend_from_slice(&JOURNAL_MAGIC);
        base.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        base.extend_from_slice(&parsed.session_id.to_le_bytes());
        if let Some(first) = parsed.records.first() {
            base.extend_from_slice(&encode_frame(first));
        }
        Journal {
            path: journal_path(dir, parsed.session_id),
            base,
            next_seq: parsed.records.last().map(|r| r.seq + 1).unwrap_or(1),
            durable_len: parsed.durable_len,
        }
    }

    /// Bytes currently on disk (drives the auto-checkpoint threshold).
    pub fn durable_len(&self) -> u64 {
        self.durable_len
    }

    /// Appends one op (write + fsync) and returns its sequence number.
    /// On failure — real or injected — any partially appended bytes are
    /// truncated back so the on-disk journal stays exactly its previous
    /// durable prefix.
    ///
    /// # Errors
    ///
    /// Disk failures (or injected chaos faults); the journal itself is
    /// left consistent either way.
    pub fn append(
        &mut self,
        op: JournalOp,
        req_id: Option<u64>,
        chaos: Option<&IoChaos>,
    ) -> std::io::Result<u64> {
        let seq = self.next_seq;
        let frame = encode_frame(&JournalRecord { seq, req_id, op });
        let res = (|| -> std::io::Result<()> {
            let mut f = std::fs::OpenOptions::new().append(true).open(&self.path)?;
            if let Some(fault) = chaos.and_then(IoChaos::next_fault) {
                if fault == IoFault::TornWrite {
                    let _ = f.write_all(&frame[..frame.len() / 2]);
                }
                return Err(std::io::Error::other(format!(
                    "chaos: {} during journal append (injected)",
                    fault.label()
                )));
            }
            f.write_all(&frame)?;
            f.sync_data()
        })();
        match res {
            Ok(()) => {
                self.durable_len += frame.len() as u64;
                self.next_seq = seq + 1;
                Ok(seq)
            }
            Err(e) => {
                // Clear any torn bytes so later appends (after the disk
                // recovers) continue from an intact prefix.
                if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&self.path) {
                    let _ = f.set_len(self.durable_len);
                }
                Err(e)
            }
        }
    }

    /// Forcibly truncates the journal back to `len` (a durable prefix
    /// captured earlier via [`Journal::durable_len`]). Last-resort
    /// consistency: when a journaled op could not execute *and* the
    /// rollback record could not be appended (the disk is failing),
    /// physically removing the op record keeps replay honest — shrinking
    /// a file needs no free space, so this works even under ENOSPC.
    /// Sequence numbers keep advancing; replay only requires them to be
    /// monotonic, not dense.
    pub fn truncate_to(&mut self, len: u64) {
        if len >= self.durable_len {
            return;
        }
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&self.path) {
            if f.set_len(len).is_ok() {
                self.durable_len = len;
            }
        }
    }

    /// Checkpoints the session: writes `spool` to its seq-named `.kses`
    /// (atomic), then atomically rewrites the journal as
    /// `header · create · checkpoint` — the rename is the commit point —
    /// then deletes superseded spools. Returns the new spool path.
    ///
    /// # Errors
    ///
    /// Disk failures (or injected chaos faults). Failure at any point
    /// leaves the previous journal + spool pair authoritative; a spool
    /// written before a failed journal rewrite is an orphan that recovery
    /// ignores and cleans up.
    pub fn checkpoint(
        &mut self,
        id: u64,
        spool: &[u8],
        cycles: u64,
        stalled: u64,
        pending: &[Injection],
        chaos: Option<&IoChaos>,
    ) -> std::io::Result<PathBuf> {
        let seq = self.next_seq;
        let dir = self.path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let spool_file = spool_path(&dir, id, seq);
        write_checked(chaos, &spool_file, spool)?;
        let rec = JournalRecord {
            seq,
            req_id: None,
            op: JournalOp::Checkpoint {
                cycles,
                stalled,
                pending: pending.iter().map(|i| (i.cycle, i.reg.0, i.bit)).collect(),
            },
        };
        let mut bytes = self.base.clone();
        bytes.extend_from_slice(&encode_frame(&rec));
        if let Err(e) = write_checked(chaos, &self.path, &bytes) {
            let _ = std::fs::remove_file(&spool_file);
            return Err(e);
        }
        self.durable_len = bytes.len() as u64;
        self.next_seq = seq + 1;
        remove_spools_except(&dir, id, Some(seq));
        Ok(spool_file)
    }

    /// Best-effort append of a `close` record followed by deletion of the
    /// journal and every spool. If deletion fails the close record still
    /// keeps recovery from resurrecting the session.
    pub fn delete(mut self, id: u64, chaos: Option<&IoChaos>) {
        let _ = self.append(JournalOp::Close, None, chaos);
        let dir = self.path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let _ = std::fs::remove_file(&self.path);
        remove_spools_except(&dir, id, None);
    }
}

/// Deletes every `session-<id>-*.kses` spool except the one named by
/// `keep` (plus any stale `.tmp` siblings).
pub fn remove_spools_except(dir: &Path, id: u64, keep: Option<u64>) {
    let prefix = format!("session-{id}-");
    let keep_name = keep.map(|seq| format!("session-{id}-{seq}.kses"));
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with(&prefix) {
            continue;
        }
        let is_spool = name.ends_with(".kses");
        let is_tmp = name.ends_with(".kses.tmp");
        if !is_spool && !is_tmp {
            continue;
        }
        if is_spool && keep_name.as_deref() == Some(name) {
            continue;
        }
        let _ = std::fs::remove_file(entry.path());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::tir::RegId;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("kjrn-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn create_rec() -> JournalRecord {
        JournalRecord {
            seq: 0,
            req_id: Some(99),
            op: JournalOp::Create {
                design: "collatz".into(),
                tenant: "t0".into(),
                backend: BackendKind::Cuttlesim,
                watchdog: WatchdogSpec {
                    max_cycles: Some(1000),
                    stall_cycles: None,
                    wall_ms: Some(250),
                },
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_a_journal_file() {
        let dir = tmpdir("roundtrip");
        let mut j = Journal::create(&dir, 7, &create_rec(), None).unwrap();
        j.append(JournalOp::Step { n: 10 }, Some(1), None).unwrap();
        j.append(
            JournalOp::Inject {
                cycle: 12,
                reg: 0,
                bit: 3,
            },
            None,
            None,
        )
        .unwrap();
        j.append(JournalOp::Rollback { of_seq: 1 }, None, None).unwrap();
        let parsed = read_journal(&journal_path(&dir, 7)).unwrap();
        assert_eq!(parsed.session_id, 7);
        assert!(!parsed.truncated);
        assert_eq!(parsed.records.len(), 4);
        assert_eq!(parsed.records[0], create_rec());
        assert_eq!(parsed.records[1].op, JournalOp::Step { n: 10 });
        assert_eq!(parsed.records[1].req_id, Some(1));
        assert_eq!(
            parsed.records[3].op,
            JournalOp::Rollback { of_seq: 1 }
        );
        assert_eq!(parsed.durable_len, std::fs::metadata(journal_path(&dir, 7)).unwrap().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_without_losing_the_prefix() {
        let dir = tmpdir("torn");
        let mut j = Journal::create(&dir, 1, &create_rec(), None).unwrap();
        j.append(JournalOp::Step { n: 5 }, None, None).unwrap();
        let path = journal_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let durable = bytes.len();
        // Simulate a crash mid-append: half a record's worth of garbage.
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();
        let parsed = read_journal(&path).unwrap();
        assert!(parsed.truncated);
        assert_eq!(parsed.durable_len, durable as u64);
        assert_eq!(parsed.records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_prefix_of_a_journal_parses_to_a_record_prefix() {
        let dir = tmpdir("prefix");
        let mut j = Journal::create(&dir, 3, &create_rec(), None).unwrap();
        j.append(JournalOp::Step { n: 4 }, Some(2), None).unwrap();
        j.append(
            JournalOp::Restore {
                ksnap: vec![9; 33],
            },
            None,
            None,
        )
        .unwrap();
        j.append(JournalOp::Close, None, None).unwrap();
        let bytes = std::fs::read(journal_path(&dir, 3)).unwrap();
        let full = parse_journal_bytes(&bytes).unwrap().records;
        for cut in 0..bytes.len() {
            match parse_journal_bytes(&bytes[..cut]) {
                Err(_) => assert!(cut < 16, "typed error past the header at {cut}"),
                Ok(p) => {
                    assert!(p.records.len() <= full.len());
                    assert_eq!(p.records[..], full[..p.records.len()], "cut at {cut}");
                    assert!(p.durable_len <= cut as u64);
                    // Anything dropped must be flagged.
                    assert_eq!(p.truncated, p.durable_len < cut as u64);
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_truncates_back_to_the_durable_prefix() {
        use crate::chaos::{IoChaos, IoFault};
        let dir = tmpdir("failapp");
        let mut j = Journal::create(&dir, 4, &create_rec(), None).unwrap();
        j.append(JournalOp::Step { n: 2 }, None, None).unwrap();
        let before = std::fs::metadata(journal_path(&dir, 4)).unwrap().len();
        let chaos = IoChaos::forced(IoFault::TornWrite);
        let err = j
            .append(JournalOp::Step { n: 3 }, None, Some(&chaos))
            .unwrap_err();
        assert!(err.to_string().starts_with("chaos:"));
        assert_eq!(std::fs::metadata(journal_path(&dir, 4)).unwrap().len(), before);
        chaos.clear_forced();
        // The disk "recovered": the next append lands cleanly.
        j.append(JournalOp::Step { n: 3 }, None, Some(&chaos)).unwrap();
        let parsed = read_journal(&journal_path(&dir, 4)).unwrap();
        assert!(!parsed.truncated);
        assert_eq!(parsed.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rewrites_journal_and_prunes_spools() {
        let dir = tmpdir("ckpt");
        let mut j = Journal::create(&dir, 9, &create_rec(), None).unwrap();
        j.append(JournalOp::Step { n: 10 }, None, None).unwrap();
        let inj = Injection {
            cycle: 40,
            reg: RegId(1),
            bit: 2,
        };
        let p1 = j.checkpoint(9, b"SPOOL-A", 10, 3, &[inj], None).unwrap();
        assert!(p1.exists());
        j.append(JournalOp::Step { n: 7 }, None, None).unwrap();
        let p2 = j.checkpoint(9, b"SPOOL-B", 17, 0, &[], None).unwrap();
        assert!(!p1.exists(), "superseded spool must be pruned");
        assert_eq!(std::fs::read(&p2).unwrap(), b"SPOOL-B");
        let parsed = read_journal(&journal_path(&dir, 9)).unwrap();
        assert_eq!(parsed.records.len(), 2, "create + checkpoint only");
        assert_eq!(parsed.records[0], create_rec());
        match &parsed.records[1].op {
            JournalOp::Checkpoint {
                cycles, pending, ..
            } => {
                assert_eq!(*cycles, 17);
                assert!(pending.is_empty());
                assert_eq!(spool_path(&dir, 9, parsed.records[1].seq), p2);
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
        // Appends continue with monotonic seqs after the rewrite.
        let seq = j.append(JournalOp::Step { n: 1 }, None, None).unwrap();
        assert!(seq > parsed.records[1].seq);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_checkpoint_leaves_previous_pair_authoritative() {
        use crate::chaos::{IoChaos, IoFault};
        let dir = tmpdir("ckptfail");
        let mut j = Journal::create(&dir, 2, &create_rec(), None).unwrap();
        let p1 = j.checkpoint(2, b"GOOD", 5, 0, &[], None).unwrap();
        j.append(JournalOp::Step { n: 1 }, None, None).unwrap();
        let before = std::fs::read(journal_path(&dir, 2)).unwrap();
        let chaos = IoChaos::forced(IoFault::Enospc);
        assert!(j.checkpoint(2, b"NEW", 6, 0, &[], Some(&chaos)).is_err());
        assert_eq!(std::fs::read(journal_path(&dir, 2)).unwrap(), before);
        assert_eq!(std::fs::read(&p1).unwrap(), b"GOOD");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
