//! Simulation-as-a-service: a multi-tenant TCP session server over the
//! Kôika simulation backends.
//!
//! The paper's thesis is that compiling a hardware design to software makes
//! simulation behave like any other program — cheap to start, easy to
//! instrument. This crate takes the next step the ROADMAP asks for: if a
//! simulation is just a program, it can also be *served* like one. The
//! server multiplexes thousands of concurrent simulation sessions onto one
//! process, with robustness as the headline feature:
//!
//! * **Admission control** — the session table is bounded
//!   ([`ServerConfig::max_sessions`]) and the step queue is bounded
//!   ([`ServerConfig::queue_depth`]); both shed load with explicit `busy`
//!   replies instead of queueing without limit.
//! * **Per-session fault isolation** — every step executes under the
//!   [`koika::runner`] panic containment. A poisoned design (a device or
//!   backend that panics) kills exactly one session: the client gets a
//!   clean `error` reply, the session is torn down, and every other
//!   session — and the server itself — is unaffected.
//! * **Snapshot-backed eviction** — idle sessions spill their register
//!   file and device state to a `.ksnap`-based spool file and are
//!   transparently rehydrated on the next request. Sessions are *data*
//!   (a [`koika::snapshot::Snapshot`] plus device blobs), not live
//!   threads, so eviction is cheap and exact.
//! * **Watchdog budgets** — each session owns an armed
//!   [`koika::fault::Watchdog`] (cycle / stall / wall budgets). The wall
//!   clock is paused whenever the session is idle or evicted, so a slow
//!   client or a long eviction never counts against the budget.
//! * **Batch-lane packing** — concurrent `step` requests for the same
//!   design are packed into one [`cuttlesim::batch::BatchSim`] lock-step
//!   engine; per-lane results are bit-identical to scalar execution, so
//!   packing is purely a throughput optimization.
//! * **Graceful drain** — a `shutdown` request finishes in-flight steps,
//!   spills every remaining live session to the spool directory, closes
//!   the listener, and returns final statistics.
//! * **Durable crash recovery** — with [`ServerConfig::state_dir`] set,
//!   every state-mutating op is appended to a per-session write-ahead
//!   journal ([`journal`]) before it executes, checkpointed away whenever
//!   the session spools a `.ksnap`. A restart (even after `kill -9`)
//!   rebuilds the session table by rehydrating the newest spool and
//!   deterministically re-executing the journal tail — recovered
//!   registers and commit fingerprints are byte-identical to an
//!   uninterrupted run. Clients may tag mutating requests with a
//!   `req_id` for idempotent at-most-once re-submission, and durable
//!   write failures degrade the server to a typed `read-only` mode
//!   instead of panicking.
//! * **Chaos testing** — a seeded fault injector ([`chaos`]) drives torn
//!   and short writes, ENOSPC, dropped/duplicated connections, delays,
//!   and mid-step panics through the whole stack (`server_bench --chaos`)
//!   while asserting zero cross-session blast radius and recoverability
//!   after every event.
//!
//! The wire protocol is line-oriented JSON — one request object per line,
//! one reply object per line — documented in [`server`].

pub mod chaos;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod server;
pub mod session;

pub use chaos::{ChaosRng, IoChaos, IoFault};
pub use metrics::ServerMetrics;
pub use server::{spawn, ServerConfig, ServerHandle, ServerStats};
pub use session::{BackendKind, DesignProvider};
