//! Golden-model ISA interpreter: an instruction-accurate (not cycle-
//! accurate) RV32I executor used as functional ground truth for the
//! pipelined Kôika cores.
//!
//! The hardware cores must retire exactly the same architectural state —
//! register file and memory — as this model, whatever their pipelining and
//! stalling behavior; lockstep comparison is done by the integration tests.

use crate::isa::{decode, Instr};

/// Execution halts on `jal x0, 0` (a jump-to-self), the convention used by
/// all benchmark programs in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Still running.
    Running,
    /// The self-jump halt marker was reached.
    Halted,
    /// An undecodable instruction was fetched.
    IllegalInstruction(u32),
}

/// The golden-model machine state.
#[derive(Debug, Clone)]
pub struct Golden {
    /// Architectural registers (`x0` is forced to zero).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Word-addressed flat memory.
    mem: Vec<u32>,
    /// Retired instruction count.
    pub retired: u64,
    exit: Exit,
}

impl Golden {
    /// Creates a machine with the program loaded at address 0 and the given
    /// total memory size in 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit.
    pub fn new(program: &[u32], mem_words: usize) -> Golden {
        assert!(program.len() <= mem_words, "program larger than memory");
        let mut mem = vec![0u32; mem_words];
        mem[..program.len()].copy_from_slice(program);
        Golden {
            regs: [0; 32],
            pc: 0,
            mem,
            retired: 0,
            exit: Exit::Running,
        }
    }

    /// Current exit status.
    pub fn exit(&self) -> Exit {
        self.exit
    }

    /// Reads a 32-bit word from memory (word-aligned address).
    pub fn load_word(&self, addr: u32) -> u32 {
        self.mem[(addr >> 2) as usize % self.mem.len()]
    }

    /// Writes a 32-bit word to memory (word-aligned address).
    pub fn store_word(&mut self, addr: u32, value: u32) {
        let len = self.mem.len();
        self.mem[(addr >> 2) as usize % len] = value;
    }

    fn rd(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    fn rs(&self, r: u8) -> u32 {
        self.regs[r as usize]
    }

    fn load(&self, addr: u32, width: u32, signed: bool) -> u32 {
        let word = self.load_word(addr & !3);
        let shift = (addr & 3) * 8;
        let raw = word >> shift;
        match (width, signed) {
            (8, false) => raw & 0xff,
            (8, true) => (raw as u8) as i8 as i32 as u32,
            (16, false) => raw & 0xffff,
            (16, true) => (raw as u16) as i16 as i32 as u32,
            _ => word,
        }
    }

    fn store(&mut self, addr: u32, width: u32, value: u32) {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        let old = self.load_word(aligned);
        let new = match width {
            8 => (old & !(0xff << shift)) | ((value & 0xff) << shift),
            16 => (old & !(0xffff << shift)) | ((value & 0xffff) << shift),
            _ => value,
        };
        self.store_word(aligned, new);
    }

    /// Executes one instruction; returns the new exit status.
    pub fn step(&mut self) -> Exit {
        if self.exit != Exit::Running {
            return self.exit;
        }
        let word = self.load_word(self.pc);
        let Some(instr) = decode(word) else {
            self.exit = Exit::IllegalInstruction(word);
            return self.exit;
        };
        use Instr::*;
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        match instr {
            Lui { rd, imm } => self.rd(rd, imm as u32),
            Auipc { rd, imm } => self.rd(rd, pc.wrapping_add(imm as u32)),
            Jal { rd, imm } => {
                if rd == 0 && imm == 0 {
                    self.exit = Exit::Halted;
                    return self.exit;
                }
                self.rd(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(imm as u32);
            }
            Jalr { rd, rs1, imm } => {
                let t = self.rs(rs1).wrapping_add(imm as u32) & !1;
                self.rd(rd, pc.wrapping_add(4));
                next_pc = t;
            }
            Beq { rs1, rs2, imm } => {
                if self.rs(rs1) == self.rs(rs2) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Bne { rs1, rs2, imm } => {
                if self.rs(rs1) != self.rs(rs2) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Blt { rs1, rs2, imm } => {
                if (self.rs(rs1) as i32) < (self.rs(rs2) as i32) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Bge { rs1, rs2, imm } => {
                if (self.rs(rs1) as i32) >= (self.rs(rs2) as i32) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Bltu { rs1, rs2, imm } => {
                if self.rs(rs1) < self.rs(rs2) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Bgeu { rs1, rs2, imm } => {
                if self.rs(rs1) >= self.rs(rs2) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Lb { rd, rs1, imm } => {
                let v = self.load(self.rs(rs1).wrapping_add(imm as u32), 8, true);
                self.rd(rd, v);
            }
            Lh { rd, rs1, imm } => {
                let v = self.load(self.rs(rs1).wrapping_add(imm as u32), 16, true);
                self.rd(rd, v);
            }
            Lw { rd, rs1, imm } => {
                let v = self.load(self.rs(rs1).wrapping_add(imm as u32), 32, false);
                self.rd(rd, v);
            }
            Lbu { rd, rs1, imm } => {
                let v = self.load(self.rs(rs1).wrapping_add(imm as u32), 8, false);
                self.rd(rd, v);
            }
            Lhu { rd, rs1, imm } => {
                let v = self.load(self.rs(rs1).wrapping_add(imm as u32), 16, false);
                self.rd(rd, v);
            }
            Sb { rs1, rs2, imm } => {
                self.store(self.rs(rs1).wrapping_add(imm as u32), 8, self.rs(rs2))
            }
            Sh { rs1, rs2, imm } => {
                self.store(self.rs(rs1).wrapping_add(imm as u32), 16, self.rs(rs2))
            }
            Sw { rs1, rs2, imm } => {
                self.store(self.rs(rs1).wrapping_add(imm as u32), 32, self.rs(rs2))
            }
            Addi { rd, rs1, imm } => self.rd(rd, self.rs(rs1).wrapping_add(imm as u32)),
            Slti { rd, rs1, imm } => self.rd(rd, ((self.rs(rs1) as i32) < imm) as u32),
            Sltiu { rd, rs1, imm } => self.rd(rd, (self.rs(rs1) < imm as u32) as u32),
            Xori { rd, rs1, imm } => self.rd(rd, self.rs(rs1) ^ imm as u32),
            Ori { rd, rs1, imm } => self.rd(rd, self.rs(rs1) | imm as u32),
            Andi { rd, rs1, imm } => self.rd(rd, self.rs(rs1) & imm as u32),
            Slli { rd, rs1, shamt } => self.rd(rd, self.rs(rs1) << shamt),
            Srli { rd, rs1, shamt } => self.rd(rd, self.rs(rs1) >> shamt),
            Srai { rd, rs1, shamt } => self.rd(rd, ((self.rs(rs1) as i32) >> shamt) as u32),
            Add { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1).wrapping_add(self.rs(rs2))),
            Sub { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1).wrapping_sub(self.rs(rs2))),
            Sll { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1) << (self.rs(rs2) & 31)),
            Slt { rd, rs1, rs2 } => {
                self.rd(rd, ((self.rs(rs1) as i32) < (self.rs(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.rd(rd, (self.rs(rs1) < self.rs(rs2)) as u32),
            Xor { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1) ^ self.rs(rs2)),
            Srl { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1) >> (self.rs(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                self.rd(rd, ((self.rs(rs1) as i32) >> (self.rs(rs2) & 31)) as u32)
            }
            Or { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1) | self.rs(rs2)),
            And { rd, rs1, rs2 } => self.rd(rd, self.rs(rs1) & self.rs(rs2)),
        }
        self.pc = next_pc;
        self.retired += 1;
        Exit::Running
    }

    /// Runs until halt, an illegal instruction, or `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Exit {
        for _ in 0..max_steps {
            if self.step() != Exit::Running {
                break;
            }
        }
        self.exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn arithmetic_and_halt() {
        let prog = assemble(
            "
            addi x1, x0, 5
            addi x2, x0, 7
            add  x3, x1, x2
            sub  x4, x2, x1
            halt
            ",
        )
        .unwrap();
        let mut m = Golden::new(&prog, 64);
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.regs[3], 12);
        assert_eq!(m.regs[4], 2);
        assert_eq!(m.retired, 4);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let prog = assemble("addi x0, x0, 42\nhalt").unwrap();
        let mut m = Golden::new(&prog, 16);
        m.run(10);
        assert_eq!(m.regs[0], 0);
    }

    #[test]
    fn loads_and_stores_subword() {
        let prog = assemble(
            "
            addi x1, x0, 64       # base address
            addi x2, x0, -2       # 0xfffffffe
            sw   x2, 0(x1)
            lb   x3, 0(x1)        # sign-extended byte: -2
            lbu  x4, 0(x1)        # zero-extended byte: 0xfe
            lh   x5, 2(x1)        # -1
            lhu  x6, 2(x1)        # 0xffff
            sb   x0, 1(x1)
            lw   x7, 0(x1)        # 0xffff00fe
            halt
            ",
        )
        .unwrap();
        let mut m = Golden::new(&prog, 64);
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.regs[3] as i32, -2);
        assert_eq!(m.regs[4], 0xfe);
        assert_eq!(m.regs[5] as i32, -1);
        assert_eq!(m.regs[6], 0xffff);
        assert_eq!(m.regs[7], 0xffff_00fe);
    }

    #[test]
    fn branches_and_loops() {
        // Sum 1..=10.
        let prog = assemble(
            "
            addi x1, x0, 0       # sum
            addi x2, x0, 1       # i
            addi x3, x0, 10      # limit
        loop:
            add  x1, x1, x2
            addi x2, x2, 1
            ble  x2, x3, loop
            halt
            ",
        )
        .unwrap();
        let mut m = Golden::new(&prog, 64);
        assert_eq!(m.run(1000), Exit::Halted);
        assert_eq!(m.regs[1], 55);
    }

    #[test]
    fn jal_jalr_link() {
        let prog = assemble(
            "
            jal  x1, target
            addi x2, x0, 99      # skipped on first pass, executed on return
            halt
        target:
            addi x3, x0, 7
            jalr x0, x1, 0
            ",
        )
        .unwrap();
        let mut m = Golden::new(&prog, 64);
        assert_eq!(m.run(100), Exit::Halted);
        assert_eq!(m.regs[3], 7);
        assert_eq!(m.regs[2], 99);
    }

    #[test]
    fn illegal_instruction_reported() {
        let mut m = Golden::new(&[0xffff_ffff], 16);
        assert_eq!(m.run(10), Exit::IllegalInstruction(0xffff_ffff));
    }
}
