//! RV32I instruction set: typed instructions, binary encoding and decoding.
//!
//! Covers the full RV32I base integer ISA minus system instructions
//! (`ecall`/`ebreak`/`fence`/CSRs), interrupts and exceptions — exactly the
//! subset the paper's embedded cores support ("RV32I&E flavors of the RISC-V
//! ISA, minus system instructions, interrupts and exceptions").
//!
//! # Examples
//!
//! ```
//! use koika_riscv::isa::{decode, encode, Instr};
//!
//! let add = Instr::Add { rd: 3, rs1: 1, rs2: 2 };
//! assert_eq!(decode(encode(add)), Some(add));
//! ```

/// An architectural register index (`x0`..`x31`; RV32E uses only the first
/// 16).
pub type Reg = u8;

/// A decoded RV32I instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // Field meanings follow the RISC-V spec exactly.
pub enum Instr {
    Lui { rd: Reg, imm: i32 },
    Auipc { rd: Reg, imm: i32 },
    Jal { rd: Reg, imm: i32 },
    Jalr { rd: Reg, rs1: Reg, imm: i32 },
    Beq { rs1: Reg, rs2: Reg, imm: i32 },
    Bne { rs1: Reg, rs2: Reg, imm: i32 },
    Blt { rs1: Reg, rs2: Reg, imm: i32 },
    Bge { rs1: Reg, rs2: Reg, imm: i32 },
    Bltu { rs1: Reg, rs2: Reg, imm: i32 },
    Bgeu { rs1: Reg, rs2: Reg, imm: i32 },
    Lb { rd: Reg, rs1: Reg, imm: i32 },
    Lh { rd: Reg, rs1: Reg, imm: i32 },
    Lw { rd: Reg, rs1: Reg, imm: i32 },
    Lbu { rd: Reg, rs1: Reg, imm: i32 },
    Lhu { rd: Reg, rs1: Reg, imm: i32 },
    Sb { rs1: Reg, rs2: Reg, imm: i32 },
    Sh { rs1: Reg, rs2: Reg, imm: i32 },
    Sw { rs1: Reg, rs2: Reg, imm: i32 },
    Addi { rd: Reg, rs1: Reg, imm: i32 },
    Slti { rd: Reg, rs1: Reg, imm: i32 },
    Sltiu { rd: Reg, rs1: Reg, imm: i32 },
    Xori { rd: Reg, rs1: Reg, imm: i32 },
    Ori { rd: Reg, rs1: Reg, imm: i32 },
    Andi { rd: Reg, rs1: Reg, imm: i32 },
    Slli { rd: Reg, rs1: Reg, shamt: u8 },
    Srli { rd: Reg, rs1: Reg, shamt: u8 },
    Srai { rd: Reg, rs1: Reg, shamt: u8 },
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    And { rd: Reg, rs1: Reg, rs2: Reg },
}

fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn i_type(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    ((imm as u32 & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn s_type(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn u_type(imm: i32, rd: Reg, opcode: u32) -> u32 {
    (imm as u32 & 0xffff_f000) | ((rd as u32) << 7) | opcode
}

fn j_type(imm: i32, rd: Reg, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | ((rd as u32) << 7)
        | opcode
}

/// Encodes an instruction into its 32-bit machine form.
pub fn encode(i: Instr) -> u32 {
    use Instr::*;
    match i {
        Lui { rd, imm } => u_type(imm, rd, 0x37),
        Auipc { rd, imm } => u_type(imm, rd, 0x17),
        Jal { rd, imm } => j_type(imm, rd, 0x6f),
        Jalr { rd, rs1, imm } => i_type(imm, rs1, 0, rd, 0x67),
        Beq { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0, 0x63),
        Bne { rs1, rs2, imm } => b_type(imm, rs2, rs1, 1, 0x63),
        Blt { rs1, rs2, imm } => b_type(imm, rs2, rs1, 4, 0x63),
        Bge { rs1, rs2, imm } => b_type(imm, rs2, rs1, 5, 0x63),
        Bltu { rs1, rs2, imm } => b_type(imm, rs2, rs1, 6, 0x63),
        Bgeu { rs1, rs2, imm } => b_type(imm, rs2, rs1, 7, 0x63),
        Lb { rd, rs1, imm } => i_type(imm, rs1, 0, rd, 0x03),
        Lh { rd, rs1, imm } => i_type(imm, rs1, 1, rd, 0x03),
        Lw { rd, rs1, imm } => i_type(imm, rs1, 2, rd, 0x03),
        Lbu { rd, rs1, imm } => i_type(imm, rs1, 4, rd, 0x03),
        Lhu { rd, rs1, imm } => i_type(imm, rs1, 5, rd, 0x03),
        Sb { rs1, rs2, imm } => s_type(imm, rs2, rs1, 0, 0x23),
        Sh { rs1, rs2, imm } => s_type(imm, rs2, rs1, 1, 0x23),
        Sw { rs1, rs2, imm } => s_type(imm, rs2, rs1, 2, 0x23),
        Addi { rd, rs1, imm } => i_type(imm, rs1, 0, rd, 0x13),
        Slti { rd, rs1, imm } => i_type(imm, rs1, 2, rd, 0x13),
        Sltiu { rd, rs1, imm } => i_type(imm, rs1, 3, rd, 0x13),
        Xori { rd, rs1, imm } => i_type(imm, rs1, 4, rd, 0x13),
        Ori { rd, rs1, imm } => i_type(imm, rs1, 6, rd, 0x13),
        Andi { rd, rs1, imm } => i_type(imm, rs1, 7, rd, 0x13),
        Slli { rd, rs1, shamt } => i_type(shamt as i32, rs1, 1, rd, 0x13),
        Srli { rd, rs1, shamt } => i_type(shamt as i32, rs1, 5, rd, 0x13),
        Srai { rd, rs1, shamt } => i_type(shamt as i32 | 0x400, rs1, 5, rd, 0x13),
        Add { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 0, rd, 0x33),
        Sub { rd, rs1, rs2 } => r_type(0x20, rs2, rs1, 0, rd, 0x33),
        Sll { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 1, rd, 0x33),
        Slt { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 2, rd, 0x33),
        Sltu { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 3, rd, 0x33),
        Xor { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 4, rd, 0x33),
        Srl { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 5, rd, 0x33),
        Sra { rd, rs1, rs2 } => r_type(0x20, rs2, rs1, 5, rd, 0x33),
        Or { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 6, rd, 0x33),
        And { rd, rs1, rs2 } => r_type(0x00, rs2, rs1, 7, rd, 0x33),
    }
}

/// Decodes a 32-bit machine word; `None` for anything outside the supported
/// subset.
pub fn decode(word: u32) -> Option<Instr> {
    use Instr::*;
    let opcode = word & 0x7f;
    let rd = ((word >> 7) & 0x1f) as Reg;
    let funct3 = (word >> 12) & 7;
    let rs1 = ((word >> 15) & 0x1f) as Reg;
    let rs2 = ((word >> 20) & 0x1f) as Reg;
    let funct7 = word >> 25;
    let imm_i = (word as i32) >> 20;
    let imm_s = (((word as i32) >> 25) << 5) | (((word >> 7) & 0x1f) as i32);
    let imm_b = (((word as i32) >> 31) << 12)
        | ((((word >> 7) & 1) as i32) << 11)
        | ((((word >> 25) & 0x3f) as i32) << 5)
        | ((((word >> 8) & 0xf) as i32) << 1);
    let imm_u = (word & 0xffff_f000) as i32;
    let imm_j = (((word as i32) >> 31) << 20)
        | ((((word >> 12) & 0xff) as i32) << 12)
        | ((((word >> 20) & 1) as i32) << 11)
        | ((((word >> 21) & 0x3ff) as i32) << 1);

    Some(match opcode {
        0x37 => Lui { rd, imm: imm_u },
        0x17 => Auipc { rd, imm: imm_u },
        0x6f => Jal { rd, imm: imm_j },
        0x67 if funct3 == 0 => Jalr { rd, rs1, imm: imm_i },
        0x63 => match funct3 {
            0 => Beq { rs1, rs2, imm: imm_b },
            1 => Bne { rs1, rs2, imm: imm_b },
            4 => Blt { rs1, rs2, imm: imm_b },
            5 => Bge { rs1, rs2, imm: imm_b },
            6 => Bltu { rs1, rs2, imm: imm_b },
            7 => Bgeu { rs1, rs2, imm: imm_b },
            _ => return None,
        },
        0x03 => match funct3 {
            0 => Lb { rd, rs1, imm: imm_i },
            1 => Lh { rd, rs1, imm: imm_i },
            2 => Lw { rd, rs1, imm: imm_i },
            4 => Lbu { rd, rs1, imm: imm_i },
            5 => Lhu { rd, rs1, imm: imm_i },
            _ => return None,
        },
        0x23 => match funct3 {
            0 => Sb { rs1, rs2, imm: imm_s },
            1 => Sh { rs1, rs2, imm: imm_s },
            2 => Sw { rs1, rs2, imm: imm_s },
            _ => return None,
        },
        0x13 => match funct3 {
            0 => Addi { rd, rs1, imm: imm_i },
            2 => Slti { rd, rs1, imm: imm_i },
            3 => Sltiu { rd, rs1, imm: imm_i },
            4 => Xori { rd, rs1, imm: imm_i },
            6 => Ori { rd, rs1, imm: imm_i },
            7 => Andi { rd, rs1, imm: imm_i },
            1 if funct7 == 0 => Slli { rd, rs1, shamt: rs2 },
            5 if funct7 == 0 => Srli { rd, rs1, shamt: rs2 },
            5 if funct7 == 0x20 => Srai { rd, rs1, shamt: rs2 },
            _ => return None,
        },
        0x33 => match (funct7, funct3) {
            (0x00, 0) => Add { rd, rs1, rs2 },
            (0x20, 0) => Sub { rd, rs1, rs2 },
            (0x00, 1) => Sll { rd, rs1, rs2 },
            (0x00, 2) => Slt { rd, rs1, rs2 },
            (0x00, 3) => Sltu { rd, rs1, rs2 },
            (0x00, 4) => Xor { rd, rs1, rs2 },
            (0x00, 5) => Srl { rd, rs1, rs2 },
            (0x20, 5) => Sra { rd, rs1, rs2 },
            (0x00, 6) => Or { rd, rs1, rs2 },
            (0x00, 7) => And { rd, rs1, rs2 },
            _ => return None,
        },
        _ => return None,
    })
}

/// The canonical RISC-V `NOP` (`ADDI x0, x0, 0`) — whose scoreboard
/// interaction drives the paper's case study 3.
pub const NOP: Instr = Instr::Addi {
    rd: 0,
    rs1: 0,
    imm: 0,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        use Instr::*;
        vec![
            Lui { rd: 5, imm: 0x12345 << 12 },
            Auipc { rd: 1, imm: -4096 },
            Jal { rd: 1, imm: 2048 },
            Jal { rd: 0, imm: -16 },
            Jalr { rd: 1, rs1: 2, imm: -8 },
            Beq { rs1: 1, rs2: 2, imm: 16 },
            Bne { rs1: 3, rs2: 4, imm: -32 },
            Blt { rs1: 5, rs2: 6, imm: 4094 },
            Bge { rs1: 7, rs2: 8, imm: -4096 },
            Bltu { rs1: 9, rs2: 10, imm: 2 },
            Bgeu { rs1: 11, rs2: 12, imm: -2 },
            Lb { rd: 1, rs1: 2, imm: -1 },
            Lh { rd: 3, rs1: 4, imm: 2 },
            Lw { rd: 5, rs1: 6, imm: 2047 },
            Lbu { rd: 7, rs1: 8, imm: -2048 },
            Lhu { rd: 9, rs1: 10, imm: 0 },
            Sb { rs1: 1, rs2: 2, imm: -1 },
            Sh { rs1: 3, rs2: 4, imm: 2 },
            Sw { rs1: 5, rs2: 6, imm: 2047 },
            Addi { rd: 1, rs1: 2, imm: -2048 },
            Slti { rd: 3, rs1: 4, imm: 5 },
            Sltiu { rd: 5, rs1: 6, imm: 7 },
            Xori { rd: 7, rs1: 8, imm: -1 },
            Ori { rd: 9, rs1: 10, imm: 0x7ff },
            Andi { rd: 11, rs1: 12, imm: 0xf },
            Slli { rd: 1, rs1: 2, shamt: 31 },
            Srli { rd: 3, rs1: 4, shamt: 1 },
            Srai { rd: 5, rs1: 6, shamt: 17 },
            Add { rd: 1, rs1: 2, rs2: 3 },
            Sub { rd: 4, rs1: 5, rs2: 6 },
            Sll { rd: 7, rs1: 8, rs2: 9 },
            Slt { rd: 10, rs1: 11, rs2: 12 },
            Sltu { rd: 13, rs1: 14, rs2: 15 },
            Xor { rd: 16, rs1: 17, rs2: 18 },
            Srl { rd: 19, rs1: 20, rs2: 21 },
            Sra { rd: 22, rs1: 23, rs2: 24 },
            Or { rd: 25, rs1: 26, rs2: 27 },
            And { rd: 28, rs1: 29, rs2: 30 },
            NOP,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in all_sample_instrs() {
            assert_eq!(decode(encode(i)), Some(i), "{i:?}");
        }
    }

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec / assembler output.
        assert_eq!(encode(NOP), 0x0000_0013);
        assert_eq!(
            encode(Instr::Add { rd: 3, rs1: 1, rs2: 2 }),
            0x0020_81b3
        );
        assert_eq!(
            encode(Instr::Sw { rs1: 2, rs2: 14, imm: 8 }),
            0x00e1_2423
        );
        assert_eq!(encode(Instr::Jal { rd: 0, imm: 0 }), 0x0000_006f);
    }

    #[test]
    fn rejects_unsupported() {
        assert_eq!(decode(0x0000_0073), None); // ecall
        assert_eq!(decode(0x0000_000f), None); // fence
        assert_eq!(decode(0xffff_ffff), None);
    }
}
