//! A small two-pass RV32I assembler with labels and common pseudo-
//! instructions — enough to write the paper's benchmark programs without an
//! external toolchain.
//!
//! Supported pseudo-instructions: `nop`, `li rd, imm` (full 32-bit),
//! `mv rd, rs`, `j label`, `jal label` (rd = ra), `call label`, `ret`,
//! `ble`/`bgt`/`bleu`/`bgtu` (operand-swapped branches), `beqz`/`bnez`, and
//! `halt` (the `jal x0, 0` self-loop every program ends with).
//!
//! Syntax: one instruction per line; `#` or `//` start comments; labels end
//! with `:`; registers are `x0`..`x31` or ABI names (`zero`, `ra`, `sp`,
//! `a0`..); loads/stores use `off(base)` addressing.
//!
//! # Examples
//!
//! ```
//! let prog = koika_riscv::asm::assemble("
//!     li   a0, 5
//! loop:
//!     addi a0, a0, -1
//!     bnez a0, loop
//!     halt
//! ")?;
//! assert_eq!(prog.len(), 5); // li expands to lui+addi
//! # Ok::<(), koika_riscv::asm::AsmError>(())
//! ```

use crate::isa::{encode, Instr};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error, with the offending 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<u8, AsmError> {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
        "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
        "t3", "t4", "t5", "t6",
    ];
    let tok = tok.trim();
    if let Some(n) = tok.strip_prefix('x') {
        if let Ok(v) = n.parse::<u8>() {
            if v < 32 {
                return Ok(v);
            }
        }
    }
    if tok == "fp" {
        return Ok(8);
    }
    if let Some(i) = ABI.iter().position(|a| *a == tok) {
        return Ok(i as u8);
    }
    Err(err(line, format!("unknown register {tok:?}")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate {tok:?}")))?;
    Ok(if neg { -v } else { v })
}

#[derive(Debug)]
enum Operand {
    Reg(u8),
    Imm(i64),
    Label(String),
    Mem { offset: i64, base: u8 },
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let tok = tok.trim();
    if let Some(open) = tok.find('(') {
        let close = tok
            .rfind(')')
            .ok_or_else(|| err(line, "missing ) in memory operand"))?;
        let off = if tok[..open].trim().is_empty() {
            0
        } else {
            parse_imm(&tok[..open], line)?
        };
        let base = parse_reg(&tok[open + 1..close], line)?;
        return Ok(Operand::Mem { offset: off, base });
    }
    if let Ok(r) = parse_reg(tok, line) {
        return Ok(Operand::Reg(r));
    }
    if tok
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        return Ok(Operand::Imm(parse_imm(tok, line)?));
    }
    Ok(Operand::Label(tok.to_string()))
}

struct Line {
    line_no: usize,
    mnemonic: String,
    ops: Vec<Operand>,
}

/// Assembles a program into 32-bit machine words (loaded at address 0).
///
/// # Errors
///
/// Returns the first [`AsmError`] (unknown mnemonic or register, bad
/// operand count, immediate out of range, undefined label).
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    // Pass 1: tokenize, record label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut lines: Vec<Line> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let mut text = raw;
        if let Some(p) = text.find('#') {
            text = &text[..p];
        }
        if let Some(p) = text.find("//") {
            text = &text[..p];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line_no, "malformed label"));
            }
            let addr = size_of_program(&lines) * 4;
            if labels.insert(label.to_string(), addr as u32).is_some() {
                return Err(err(line_no, format!("duplicate label {label:?}")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], &text[p..]),
            None => (text, ""),
        };
        let ops = if rest.trim().is_empty() {
            Vec::new()
        } else {
            rest.split(',')
                .map(|t| parse_operand(t, line_no))
                .collect::<Result<Vec<_>, _>>()?
        };
        lines.push(Line {
            line_no,
            mnemonic: mnemonic.to_lowercase(),
            ops,
        });
    }

    // Pass 2: encode.
    let mut words = Vec::new();
    for l in &lines {
        let pc = (words.len() * 4) as u32;
        for instr in lower(l, pc, &labels)? {
            words.push(encode(instr));
        }
    }
    Ok(words)
}

/// How many words each line expands to (needed for label addresses).
fn size_of_program(lines: &[Line]) -> usize {
    lines.iter().map(|l| expansion_size(&l.mnemonic)).sum()
}

fn expansion_size(mnemonic: &str) -> usize {
    match mnemonic {
        "li" => 2, // worst case lui+addi; kept fixed for simple label math
        "call" => 1,
        _ => 1,
    }
}

fn get_label(labels: &HashMap<String, u32>, name: &str, line: usize) -> Result<u32, AsmError> {
    labels
        .get(name)
        .copied()
        .ok_or_else(|| err(line, format!("undefined label {name:?}")))
}

fn reg_of(op: &Operand, line: usize) -> Result<u8, AsmError> {
    match op {
        Operand::Reg(r) => Ok(*r),
        _ => Err(err(line, "expected a register")),
    }
}

fn imm_of(op: &Operand, line: usize) -> Result<i64, AsmError> {
    match op {
        Operand::Imm(v) => Ok(*v),
        _ => Err(err(line, "expected an immediate")),
    }
}

fn target_of(
    op: &Operand,
    pc: u32,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<i32, AsmError> {
    let target = match op {
        Operand::Label(name) => get_label(labels, name, line)? as i64,
        Operand::Imm(v) => *v,
        _ => return Err(err(line, "expected a label or address")),
    };
    Ok((target - pc as i64) as i32)
}

fn check_range(v: i64, bits: u32, line: usize) -> Result<i32, AsmError> {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    if v < lo || v > hi {
        return Err(err(line, format!("immediate {v} out of {bits}-bit range")));
    }
    Ok(v as i32)
}

fn lower(l: &Line, pc: u32, labels: &HashMap<String, u32>) -> Result<Vec<Instr>, AsmError> {
    use Instr::*;
    let n = l.line_no;
    let ops = &l.ops;
    let need = |count: usize| -> Result<(), AsmError> {
        if ops.len() == count {
            Ok(())
        } else {
            Err(err(n, format!("expected {count} operands, got {}", ops.len())))
        }
    };

    let mem_rr = |f: fn(u8, u8, i32) -> Instr| -> Result<Vec<Instr>, AsmError> {
        need(2)?;
        let r = reg_of(&ops[0], n)?;
        match &ops[1] {
            Operand::Mem { offset, base } => {
                Ok(vec![f(r, *base, check_range(*offset, 12, n)?)])
            }
            _ => Err(err(n, "expected off(base) operand")),
        }
    };

    let r3 = |f: fn(u8, u8, u8) -> Instr| -> Result<Vec<Instr>, AsmError> {
        need(3)?;
        Ok(vec![f(
            reg_of(&ops[0], n)?,
            reg_of(&ops[1], n)?,
            reg_of(&ops[2], n)?,
        )])
    };

    let i12 = |f: fn(u8, u8, i32) -> Instr| -> Result<Vec<Instr>, AsmError> {
        need(3)?;
        Ok(vec![f(
            reg_of(&ops[0], n)?,
            reg_of(&ops[1], n)?,
            check_range(imm_of(&ops[2], n)?, 12, n)?,
        )])
    };

    let sh = |f: fn(u8, u8, u8) -> Instr| -> Result<Vec<Instr>, AsmError> {
        need(3)?;
        let amt = imm_of(&ops[2], n)?;
        if !(0..32).contains(&amt) {
            return Err(err(n, "shift amount out of range"));
        }
        Ok(vec![f(reg_of(&ops[0], n)?, reg_of(&ops[1], n)?, amt as u8)])
    };

    let branch = |f: fn(u8, u8, i32) -> Instr,
                  swap: bool|
     -> Result<Vec<Instr>, AsmError> {
        need(3)?;
        let (a, b) = (reg_of(&ops[0], n)?, reg_of(&ops[1], n)?);
        let (a, b) = if swap { (b, a) } else { (a, b) };
        let off = check_range(target_of(&ops[2], pc, labels, n)? as i64, 13, n)?;
        Ok(vec![f(a, b, off)])
    };

    Ok(match l.mnemonic.as_str() {
        "lui" => {
            need(2)?;
            vec![Lui {
                rd: reg_of(&ops[0], n)?,
                imm: (imm_of(&ops[1], n)? as i32) << 12,
            }]
        }
        "auipc" => {
            need(2)?;
            vec![Auipc {
                rd: reg_of(&ops[0], n)?,
                imm: (imm_of(&ops[1], n)? as i32) << 12,
            }]
        }
        "jal" => match ops.len() {
            1 => vec![Jal {
                rd: 1,
                imm: check_range(target_of(&ops[0], pc, labels, n)? as i64, 21, n)?,
            }],
            2 => vec![Jal {
                rd: reg_of(&ops[0], n)?,
                imm: check_range(target_of(&ops[1], pc, labels, n)? as i64, 21, n)?,
            }],
            _ => return Err(err(n, "jal takes 1 or 2 operands")),
        },
        "jalr" => match ops.len() {
            1 => vec![Jalr {
                rd: 0,
                rs1: reg_of(&ops[0], n)?,
                imm: 0,
            }],
            3 => vec![Jalr {
                rd: reg_of(&ops[0], n)?,
                rs1: reg_of(&ops[1], n)?,
                imm: check_range(imm_of(&ops[2], n)?, 12, n)?,
            }],
            _ => return Err(err(n, "jalr takes 1 or 3 operands")),
        },
        "beq" => branch(|rs1, rs2, imm| Beq { rs1, rs2, imm }, false)?,
        "bne" => branch(|rs1, rs2, imm| Bne { rs1, rs2, imm }, false)?,
        "blt" => branch(|rs1, rs2, imm| Blt { rs1, rs2, imm }, false)?,
        "bge" => branch(|rs1, rs2, imm| Bge { rs1, rs2, imm }, false)?,
        "bltu" => branch(|rs1, rs2, imm| Bltu { rs1, rs2, imm }, false)?,
        "bgeu" => branch(|rs1, rs2, imm| Bgeu { rs1, rs2, imm }, false)?,
        // Swapped-operand pseudo-branches.
        "bgt" => branch(|rs1, rs2, imm| Blt { rs1, rs2, imm }, true)?,
        "ble" => branch(|rs1, rs2, imm| Bge { rs1, rs2, imm }, true)?,
        "bgtu" => branch(|rs1, rs2, imm| Bltu { rs1, rs2, imm }, true)?,
        "bleu" => branch(|rs1, rs2, imm| Bgeu { rs1, rs2, imm }, true)?,
        "beqz" => {
            need(2)?;
            vec![Beq {
                rs1: reg_of(&ops[0], n)?,
                rs2: 0,
                imm: check_range(target_of(&ops[1], pc, labels, n)? as i64, 13, n)?,
            }]
        }
        "bnez" => {
            need(2)?;
            vec![Bne {
                rs1: reg_of(&ops[0], n)?,
                rs2: 0,
                imm: check_range(target_of(&ops[1], pc, labels, n)? as i64, 13, n)?,
            }]
        }
        "lb" => mem_rr(|rd, rs1, imm| Lb { rd, rs1, imm })?,
        "lh" => mem_rr(|rd, rs1, imm| Lh { rd, rs1, imm })?,
        "lw" => mem_rr(|rd, rs1, imm| Lw { rd, rs1, imm })?,
        "lbu" => mem_rr(|rd, rs1, imm| Lbu { rd, rs1, imm })?,
        "lhu" => mem_rr(|rd, rs1, imm| Lhu { rd, rs1, imm })?,
        "sb" => mem_rr(|rs2, rs1, imm| Sb { rs1, rs2, imm })?,
        "sh" => mem_rr(|rs2, rs1, imm| Sh { rs1, rs2, imm })?,
        "sw" => mem_rr(|rs2, rs1, imm| Sw { rs1, rs2, imm })?,
        "addi" => i12(|rd, rs1, imm| Addi { rd, rs1, imm })?,
        "slti" => i12(|rd, rs1, imm| Slti { rd, rs1, imm })?,
        "sltiu" => i12(|rd, rs1, imm| Sltiu { rd, rs1, imm })?,
        "xori" => i12(|rd, rs1, imm| Xori { rd, rs1, imm })?,
        "ori" => i12(|rd, rs1, imm| Ori { rd, rs1, imm })?,
        "andi" => i12(|rd, rs1, imm| Andi { rd, rs1, imm })?,
        "slli" => sh(|rd, rs1, shamt| Slli { rd, rs1, shamt })?,
        "srli" => sh(|rd, rs1, shamt| Srli { rd, rs1, shamt })?,
        "srai" => sh(|rd, rs1, shamt| Srai { rd, rs1, shamt })?,
        "add" => r3(|rd, rs1, rs2| Add { rd, rs1, rs2 })?,
        "sub" => r3(|rd, rs1, rs2| Sub { rd, rs1, rs2 })?,
        "sll" => r3(|rd, rs1, rs2| Sll { rd, rs1, rs2 })?,
        "slt" => r3(|rd, rs1, rs2| Slt { rd, rs1, rs2 })?,
        "sltu" => r3(|rd, rs1, rs2| Sltu { rd, rs1, rs2 })?,
        "xor" => r3(|rd, rs1, rs2| Xor { rd, rs1, rs2 })?,
        "srl" => r3(|rd, rs1, rs2| Srl { rd, rs1, rs2 })?,
        "sra" => r3(|rd, rs1, rs2| Sra { rd, rs1, rs2 })?,
        "or" => r3(|rd, rs1, rs2| Or { rd, rs1, rs2 })?,
        "and" => r3(|rd, rs1, rs2| And { rd, rs1, rs2 })?,
        // Pseudo-instructions.
        "nop" => vec![crate::isa::NOP],
        "mv" => {
            need(2)?;
            vec![Addi {
                rd: reg_of(&ops[0], n)?,
                rs1: reg_of(&ops[1], n)?,
                imm: 0,
            }]
        }
        "li" => {
            need(2)?;
            let rd = reg_of(&ops[0], n)?;
            let v = imm_of(&ops[1], n)? as i32;
            // Fixed two-instruction expansion keeps label addresses simple.
            let lo = (v << 20) >> 20; // sign-extended low 12
            let hi = v.wrapping_sub(lo) as u32; // upper 20, compensated
            vec![
                Lui {
                    rd,
                    imm: hi as i32,
                },
                Addi {
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ]
        }
        "j" => {
            need(1)?;
            vec![Jal {
                rd: 0,
                imm: check_range(target_of(&ops[0], pc, labels, n)? as i64, 21, n)?,
            }]
        }
        "call" => {
            need(1)?;
            vec![Jal {
                rd: 1,
                imm: check_range(target_of(&ops[0], pc, labels, n)? as i64, 21, n)?,
            }]
        }
        "ret" => vec![Jalr {
            rd: 0,
            rs1: 1,
            imm: 0,
        }],
        "halt" => vec![Jal { rd: 0, imm: 0 }],
        other => return Err(err(n, format!("unknown mnemonic {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{decode, Instr};

    #[test]
    fn labels_forward_and_backward() {
        let prog = assemble(
            "
        start:
            addi x1, x0, 1
            j end
            addi x1, x0, 2
        end:
            bne x1, x0, start
            halt
            ",
        )
        .unwrap();
        assert_eq!(decode(prog[1]), Some(Instr::Jal { rd: 0, imm: 8 }));
        assert_eq!(
            decode(prog[3]),
            Some(Instr::Bne {
                rs1: 1,
                rs2: 0,
                imm: -12
            })
        );
    }

    #[test]
    fn li_expands_to_lui_addi() {
        for v in [0i32, 1, -1, 2047, 2048, -2048, -2049, 0x12345678, i32::MIN, i32::MAX] {
            let prog = assemble(&format!("li t0, {v}\nhalt")).unwrap();
            assert_eq!(prog.len(), 3);
            let mut m = crate::golden::Golden::new(&prog, 16);
            m.run(10);
            assert_eq!(m.regs[5] as i32, v, "li {v}");
        }
    }

    #[test]
    fn abi_register_names() {
        let prog = assemble("add a0, sp, ra\nhalt").unwrap();
        assert_eq!(
            decode(prog[0]),
            Some(Instr::Add {
                rd: 10,
                rs1: 2,
                rs2: 1
            })
        );
    }

    #[test]
    fn memory_operands() {
        let prog = assemble("lw t0, -4(sp)\nsw t0, 8(a0)\nhalt").unwrap();
        assert_eq!(
            decode(prog[0]),
            Some(Instr::Lw {
                rd: 5,
                rs1: 2,
                imm: -4
            })
        );
        assert_eq!(
            decode(prog[1]),
            Some(Instr::Sw {
                rs1: 10,
                rs2: 5,
                imm: 8
            })
        );
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("addi x1, x0, 10000").unwrap_err();
        assert!(e.message.contains("out of 12-bit range"));

        let e = assemble("j nowhere").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }
}
