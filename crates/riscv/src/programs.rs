//! Benchmark programs for the RV32 cores, matching the character of the
//! paper's workloads: "a simple integer arithmetic benchmark" (trial-
//! division prime counting) for the performance figures, 100 NOPs for the
//! performance-debugging case study, and a branch-heavy kernel for the
//! branch-prediction case study.
//!
//! Every program halts with `jal x0, 0` and leaves its result in `a0`
//! (x10), which the harness also mirrors to memory word
//! [`RESULT_ADDR`] so it can be observed through the memory device.

use crate::asm::assemble;

/// Memory address (bytes) where programs store their final result.
pub const RESULT_ADDR: u32 = 0x400;

/// Counts primes below `limit` by trial division — the "primes" benchmark
/// the paper runs on every core variant. The result lands in `a0` and in
/// memory at `result_addr`.
///
/// Only registers `x0`..`x15` are used, so the program runs unmodified on
/// the RV32E core.
pub fn primes_at(limit: u32, result_addr: u32) -> Vec<u32> {
    assemble(&format!(
        "
        li   s0, {limit}      # limit
        li   s1, 2            # candidate n
        li   a1, 0            # prime count
    next_candidate:
        bge  s1, s0, done
        li   t0, 2            # divisor d
    try_divisor:
        # no MUL in RV32I: test d*d > n with a shift-add multiply
        mv   t1, t0           # multiplicand
        mv   t2, t0           # multiplier
        li   a2, 0            # product
    mul_loop:
        andi a3, t2, 1
        beqz a3, mul_skip
        add  a2, a2, t1
    mul_skip:
        slli t1, t1, 1
        srli t2, t2, 1
        bnez t2, mul_loop
        bgt  a2, s1, is_prime # d*d > n: prime
        # compute n mod d by repeated subtraction of shifted divisor
        mv   t1, s1           # remainder
    mod_outer:
        blt  t1, t0, mod_done
        mv   t2, t0           # shifted divisor
    mod_shift:
        slli a3, t2, 1
        bgt  a3, t1, mod_sub
        mv   t2, a3
        j    mod_shift
    mod_sub:
        sub  t1, t1, t2
        j    mod_outer
    mod_done:
        beqz t1, not_prime    # divides evenly: composite
        addi t0, t0, 1
        j    try_divisor
    is_prime:
        addi a1, a1, 1
    not_prime:
        addi s1, s1, 1
        j    next_candidate
    done:
        mv   a0, a1
        li   t0, {result_addr}
        sw   a0, 0(t0)
        halt
        "
    ))
    .expect("primes program assembles")
}

/// [`primes_at`] with the default [`RESULT_ADDR`].
pub fn primes(limit: u32) -> Vec<u32> {
    primes_at(limit, RESULT_ADDR)
}

/// The number of primes below `limit`, computed in Rust — the expected
/// result of [`primes`].
pub fn primes_expected(limit: u32) -> u32 {
    let mut count = 0;
    for n in 2..limit {
        let mut d = 2;
        let mut prime = true;
        while d * d <= n {
            if n % d == 0 {
                prime = false;
                break;
            }
            d += 1;
        }
        if prime {
            count += 1;
        }
    }
    count
}

/// `count` NOPs followed by a halt — the paper's case-study-3 workload
/// ("retiring 100 NOP instructions took 203 cycles").
pub fn nops(count: usize) -> Vec<u32> {
    let mut src = String::new();
    for _ in 0..count {
        src.push_str("nop\n");
    }
    src.push_str("halt\n");
    assemble(&src).expect("nop program assembles")
}

/// A branch-heavy kernel: iterates `iters` times over a loop whose body
/// takes data-dependent branches (Collatz-style parity tests), stressing
/// the branch predictor — the case-study-4 workload.
pub fn branchy(iters: u32) -> Vec<u32> {
    assemble(&format!(
        "
        li   s0, {iters}
        li   s1, 0            # accumulator
        li   a1, 27           # working value
    loop:
        andi t0, a1, 1
        beqz t0, even
        # odd: x = x + (x << 1) + 1  (3x + 1)
        slli t1, a1, 1
        add  a1, a1, t1
        addi a1, a1, 1
        addi s1, s1, 3
        j    cont
    even:
        srli a1, a1, 1
        addi s1, s1, 1
    cont:
        li   t2, 1
        bgt  a1, t2, no_reset
        li   a1, 27
    no_reset:
        addi s0, s0, -1
        bnez s0, loop
        mv   a0, s1
        li   t0, {RESULT_ADDR}
        sw   a0, 0(t0)
        halt
        "
    ))
    .expect("branchy program assembles")
}

/// Back-to-back dependent arithmetic (read-after-write hazards on every
/// instruction) — exposes missing bypass paths, the secondary finding in
/// the paper's case study 4.
pub fn dependent_chain(length: u32) -> Vec<u32> {
    let mut src = String::from("li a0, 1\n");
    for _ in 0..length {
        src.push_str("addi a0, a0, 1\n");
        src.push_str("slli t0, a0, 1\n");
        src.push_str("add  a0, a0, t0\n");
    }
    src.push_str(&format!("li t0, {RESULT_ADDR}\nsw a0, 0(t0)\nhalt\n"));
    assemble(&src).expect("dependent chain assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{Exit, Golden};

    #[test]
    fn primes_program_counts_correctly() {
        for limit in [10u32, 30, 100] {
            let prog = primes(limit);
            let mut m = Golden::new(&prog, 1024);
            assert_eq!(m.run(2_000_000), Exit::Halted, "limit {limit}");
            assert_eq!(m.regs[10], primes_expected(limit), "limit {limit}");
            assert_eq!(m.load_word(RESULT_ADDR), primes_expected(limit));
        }
    }

    #[test]
    fn expected_primes_spot_checks() {
        assert_eq!(primes_expected(10), 4); // 2 3 5 7
        assert_eq!(primes_expected(100), 25);
    }

    #[test]
    fn nops_retire_exactly() {
        let prog = nops(100);
        let mut m = Golden::new(&prog, 256);
        assert_eq!(m.run(1000), Exit::Halted);
        assert_eq!(m.retired, 100);
    }

    #[test]
    fn branchy_halts_and_produces_result() {
        let prog = branchy(500);
        let mut m = Golden::new(&prog, 1024);
        assert_eq!(m.run(100_000), Exit::Halted);
        assert!(m.regs[10] > 0);
    }

    #[test]
    fn dependent_chain_halts() {
        let prog = dependent_chain(50);
        let mut m = Golden::new(&prog, 1024);
        assert_eq!(m.run(10_000), Exit::Halted);
    }
}
