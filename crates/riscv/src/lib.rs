//! RISC-V RV32I/E substrate: instruction encoding and decoding, a small
//! two-pass assembler, a golden-model ISA interpreter, and the benchmark
//! programs used throughout the Cuttlesim reproduction.
//!
//! The paper evaluates Cuttlesim on "an embedded processor core supporting
//! the RV32I&E flavors of the RISC-V ISA (minus system instructions,
//! interrupts and exceptions) running a simple integer arithmetic
//! benchmark"; this crate provides that ISA surface ([`isa`]), the tooling
//! to build workloads without an external toolchain ([`asm`],
//! [`programs`]), and the functional ground truth the pipelined cores are
//! verified against ([`golden`]).
//!
//! # Examples
//!
//! ```
//! use koika_riscv::{asm::assemble, golden::{Golden, Exit}};
//!
//! let prog = assemble("li a0, 21\nadd a0, a0, a0\nhalt")?;
//! let mut m = Golden::new(&prog, 64);
//! assert_eq!(m.run(100), Exit::Halted);
//! assert_eq!(m.regs[10], 42);
//! # Ok::<(), koika_riscv::asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod golden;
pub mod isa;
pub mod programs;

pub use asm::assemble;
pub use golden::Golden;
pub use isa::{decode, encode, Instr};
