//! Property tests of the RISC-V substrate: encode/decode round trips over
//! the whole instruction space, assembler/golden-model consistency, and
//! random-program execution against a Rust-level reference.

use koika_riscv::golden::{Exit, Golden};
use koika_riscv::isa::{decode, encode, Instr};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..2048
}

fn imm13_even() -> impl Strategy<Value = i32> {
    (-2048i32..2048).prop_map(|v| v * 2)
}

fn imm21_even() -> impl Strategy<Value = i32> {
    (-524288i32..524288).prop_map(|v| v * 2)
}

fn imm20_up() -> impl Strategy<Value = i32> {
    (-524288i32..524288).prop_map(|v| v << 12)
}

fn shamt() -> impl Strategy<Value = u8> {
    0u8..32
}

fn any_instr() -> impl Strategy<Value = Instr> {
    use Instr::*;
    prop_oneof![
        (reg(), imm20_up()).prop_map(|(rd, imm)| Lui { rd, imm }),
        (reg(), imm20_up()).prop_map(|(rd, imm)| Auipc { rd, imm }),
        (reg(), imm21_even()).prop_map(|(rd, imm)| Jal { rd, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Jalr { rd, rs1, imm }),
        (reg(), reg(), imm13_even()).prop_map(|(rs1, rs2, imm)| Beq { rs1, rs2, imm }),
        (reg(), reg(), imm13_even()).prop_map(|(rs1, rs2, imm)| Bne { rs1, rs2, imm }),
        (reg(), reg(), imm13_even()).prop_map(|(rs1, rs2, imm)| Blt { rs1, rs2, imm }),
        (reg(), reg(), imm13_even()).prop_map(|(rs1, rs2, imm)| Bge { rs1, rs2, imm }),
        (reg(), reg(), imm13_even()).prop_map(|(rs1, rs2, imm)| Bltu { rs1, rs2, imm }),
        (reg(), reg(), imm13_even()).prop_map(|(rs1, rs2, imm)| Bgeu { rs1, rs2, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Lb { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Lh { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Lw { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Lbu { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Lhu { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rs1, rs2, imm)| Sb { rs1, rs2, imm }),
        (reg(), reg(), imm12()).prop_map(|(rs1, rs2, imm)| Sh { rs1, rs2, imm }),
        (reg(), reg(), imm12()).prop_map(|(rs1, rs2, imm)| Sw { rs1, rs2, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Addi { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Slti { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Sltiu { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Xori { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Ori { rd, rs1, imm }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Andi { rd, rs1, imm }),
        (reg(), reg(), shamt()).prop_map(|(rd, rs1, shamt)| Slli { rd, rs1, shamt }),
        (reg(), reg(), shamt()).prop_map(|(rd, rs1, shamt)| Srli { rd, rs1, shamt }),
        (reg(), reg(), shamt()).prop_map(|(rd, rs1, shamt)| Srai { rd, rs1, shamt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Add { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Sub { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Sll { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Slt { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Sltu { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Xor { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Srl { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Sra { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Or { rd, rs1, rs2 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| And { rd, rs1, rs2 }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        prop_assert_eq!(decode(encode(instr)), Some(instr));
    }

    /// ALU instructions executed by the golden model match direct Rust
    /// computation.
    #[test]
    fn golden_alu_matches_rust(a in any::<u32>(), b in any::<u32>(), which in 0usize..10) {
        use Instr::*;
        let (instr, expect): (Instr, u32) = match which {
            0 => (Add { rd: 3, rs1: 1, rs2: 2 }, a.wrapping_add(b)),
            1 => (Sub { rd: 3, rs1: 1, rs2: 2 }, a.wrapping_sub(b)),
            2 => (Sll { rd: 3, rs1: 1, rs2: 2 }, a << (b & 31)),
            3 => (Slt { rd: 3, rs1: 1, rs2: 2 }, ((a as i32) < (b as i32)) as u32),
            4 => (Sltu { rd: 3, rs1: 1, rs2: 2 }, (a < b) as u32),
            5 => (Xor { rd: 3, rs1: 1, rs2: 2 }, a ^ b),
            6 => (Srl { rd: 3, rs1: 1, rs2: 2 }, a >> (b & 31)),
            7 => (Sra { rd: 3, rs1: 1, rs2: 2 }, ((a as i32) >> (b & 31)) as u32),
            8 => (Or { rd: 3, rs1: 1, rs2: 2 }, a | b),
            _ => (And { rd: 3, rs1: 1, rs2: 2 }, a & b),
        };
        let program = [encode(instr), encode(Jal { rd: 0, imm: 0 })];
        let mut m = Golden::new(&program, 16);
        m.regs[1] = a;
        m.regs[2] = b;
        prop_assert_eq!(m.run(10), Exit::Halted);
        prop_assert_eq!(m.regs[3], expect, "{:?}", instr);
    }

    /// Stores followed by loads round-trip through golden-model memory for
    /// every width and alignment.
    #[test]
    fn golden_store_load_roundtrip(v in any::<u32>(), offset in 0u32..4, width in 0usize..3) {
        use Instr::*;
        // Skip misaligned halfword at offset 3 (crosses the word boundary).
        prop_assume!(!(width == 1 && offset == 3));
        prop_assume!(!(width == 2 && offset != 0));
        let addr = 32 + offset;
        let (store, load, mask): (Instr, Instr, u32) = match width {
            0 => (
                Sb { rs1: 1, rs2: 2, imm: 0 },
                Lbu { rd: 3, rs1: 1, imm: 0 },
                0xff,
            ),
            1 => (
                Sh { rs1: 1, rs2: 2, imm: 0 },
                Lhu { rd: 3, rs1: 1, imm: 0 },
                0xffff,
            ),
            _ => (
                Sw { rs1: 1, rs2: 2, imm: 0 },
                Lw { rd: 3, rs1: 1, imm: 0 },
                u32::MAX,
            ),
        };
        let program = [encode(store), encode(load), encode(Jal { rd: 0, imm: 0 })];
        let mut m = Golden::new(&program, 64);
        m.regs[1] = addr;
        m.regs[2] = v;
        prop_assert_eq!(m.run(10), Exit::Halted);
        prop_assert_eq!(m.regs[3], v & mask);
    }

    /// Arbitrary 32-bit words either decode to something that re-encodes to
    /// the same word, or are rejected — never a lossy decode.
    #[test]
    fn decode_is_injective_on_supported_words(word in any::<u32>()) {
        if let Some(instr) = decode(word) {
            let reencoded = encode(instr);
            // Shift-immediate encodings keep funct7 bits; everything else
            // must round-trip exactly.
            prop_assert_eq!(decode(reencoded), Some(instr));
        }
    }
}
