//! Differential testing of the RTL pipeline against the reference
//! interpreter: the dynamic-scheme netlist must be cycle-accurate with the
//! one-rule-at-a-time semantics — every register, every cycle, and the same
//! rules firing.
//!
//! This is the property that lets the paper treat RTL simulation and
//! Cuttlesim as interchangeable oracles ("decoupling simulation from
//! synthesis but keeping them cycle-accurate with respect to each other").
//!
//! The static ("Bluespec-style") scheme is *not* required to be cycle-exact
//! — it resolves maybe-conflicts conservatively at compile time — so for it
//! we only check a weaker property: that it never commits a rule the dynamic
//! scheme's semantics would forbid (checked on designs without
//! maybe-conflicts), plus functional correctness on designs where the two
//! coincide.

use koika::check::check;
use koika::design::DesignBuilder;
use koika::device::{RegAccess, SimBackend};
use koika::interp::Interp;
use koika::testgen::random_design;
use koika::tir::RegId;
use koika::ast::*;
use koika_rtl::{compile, RtlSim, Scheme};
use proptest::prelude::*;

fn assert_rtl_matches_interp(design: &koika::design::Design, cycles: usize) {
    let td = check(design).expect("design must typecheck");
    let mut reference = Interp::new(&td);
    let model = compile(&td, Scheme::Dynamic).expect("RTL-compilable");
    let mut rtl = RtlSim::new(model);
    for cycle in 0..cycles {
        reference.cycle();
        rtl.cycle();
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            assert_eq!(
                rtl.get64(reg),
                reference.get64(reg),
                "design {:?}, cycle {cycle}, register {}",
                td.name,
                td.regs[r].name
            );
        }
        assert_eq!(
            rtl.rules_fired(),
            reference.rules_fired(),
            "design {:?}, cycle {cycle}: fire counts diverged",
            td.name
        );
    }
}

#[test]
fn counter_and_forwarding() {
    let mut b = DesignBuilder::new("fwd");
    b.reg("a", 16, 1u64);
    b.reg("w", 16, 0u64);
    b.reg("out", 16, 0u64);
    b.rule("s1", vec![wr0("w", rd0("a").add(k(16, 3)))]);
    b.rule("s2", vec![wr0("out", rd1("w").mul(k(16, 5)))]);
    b.rule("bump", vec![wr0("a", rd0("a").add(k(16, 1)))]);
    b.schedule(["s1", "s2", "bump"]);
    assert_rtl_matches_interp(&b.build(), 50);
}

#[test]
fn conflicts_discard_losing_rules() {
    let mut b = DesignBuilder::new("conf");
    b.reg("r", 8, 0u64);
    b.reg("tick", 8, 0u64);
    b.rule(
        "even",
        vec![guard(rd0("tick").bit(0).eq(k(1, 0))), wr0("r", rd0("tick"))],
    );
    b.rule("always", vec![wr0("r", k(8, 0xaa))]);
    b.rule(
        "third",
        vec![guard(rd0("tick").bit(1).eq(k(1, 1))), wr1("r", k(8, 0x55))],
    );
    b.rule("t", vec![wr0("tick", rd0("tick").add(k(8, 1)))]);
    b.schedule(["even", "always", "third", "t"]);
    assert_rtl_matches_interp(&b.build(), 64);
}

#[test]
fn array_decoders() {
    let mut b = DesignBuilder::new("arr");
    b.array("t", 8, 8, 0u64);
    b.reg("i", 8, 0u64);
    b.rule(
        "w",
        vec![
            let_("idx", rd0("i").slice(0, 3)),
            let_("cur", rd0a("t", var("idx"))),
            wr0a("t", var("idx"), var("cur").add(k(8, 5))),
            wr0("i", rd0("i").add(k(8, 3))),
        ],
    );
    assert_rtl_matches_interp(&b.build(), 100);
}

#[test]
fn explicit_aborts_discard_everything() {
    let mut b = DesignBuilder::new("ab");
    b.reg("n", 8, 0u64);
    b.reg("m", 8, 0u64);
    b.rule(
        "rl",
        vec![
            let_("n0", rd0("n")),
            wr0("m", var("n0")),
            when(var("n0").bit(0).eq(k(1, 1)), vec![abort()]),
            wr0("n", var("n0").add(k(8, 1))),
        ],
    );
    assert_rtl_matches_interp(&b.build(), 32);
}

/// Regression: the netlist constructor used to elide *widening* `Mask`
/// nodes (the lowering of zext) as no-ops. Node values are invariantly
/// masked to their declared width, so the value survived — but `Concat`,
/// `Sext`, and `Sra` read their operand's *declared* width, so eliding
/// the node made a zext'd concat low half too narrow (the high half
/// shifted by the un-extended width) and made sext/sra pick their sign
/// bit from the un-extended position. Found by the width-boundary-biased
/// fuzz generator (seed 0xefae2613fd76d464).
#[test]
fn zext_width_survives_into_concat_sext_and_sra() {
    let mut b = DesignBuilder::new("zextw");
    b.reg("acc", 32, 0xd9fc_c8bbu64);
    b.reg("cat", 32, 0u64);
    b.reg("sx", 8, 0u64);
    b.reg("sr", 8, 0u64);
    b.rule(
        "mix",
        vec![
            let_("flag", rd0("acc").ult(k(32, 0xa54f_b278))),
            // zext'd value as a concat low half: the high half must
            // shift by the *extended* width (5), not the 1-bit source.
            wr0("cat", rd0("acc").slice(0, 27).concat(var("flag").zext(5))),
            // sext after zext must sign-extend from the zero bit the
            // zext introduced, never from the original sign position.
            wr0("sx", var("flag").zext(3).sext(8)),
            // sra after zext: the sign bit is bit 7 of the widened
            // value (always 0), not bit 3 of the nibble.
            wr0("sr", rd0("acc").slice(0, 4).zext(8).sra(k(8, 2))),
        ],
    );
    b.rule(
        "churn",
        vec![wr0("acc", rd0("acc").mul(k(32, 0x9e37_79b1)).add(k(32, 1)))],
    );
    b.schedule(["mix", "churn"]);
    assert_rtl_matches_interp(&b.build(), 64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn random_designs_match_reference(seed in any::<u64>()) {
        let design = random_design(seed);
        assert_rtl_matches_interp(&design, 24);
    }
}

/// The static scheme must still be a valid one-rule-at-a-time execution:
/// whatever subset of rules it commits in a cycle, replaying exactly that
/// subset (in schedule order) on the reference interpreter from the same
/// pre-state must yield the same post-state.
#[test]
fn static_scheme_is_a_valid_oraat_execution() {
    for seed in 0..96u64 {
        let design = random_design(seed);
        let td = check(&design).expect("typechecks");
        let model = compile(&td, Scheme::Static).expect("compilable");
        let schedule = td.schedule.clone();
        let mut rtl = RtlSim::new(model);
        let mut reference = Interp::new(&td);
        let mut prev_fired: Vec<u64> = vec![0; schedule.len()];

        for cycle in 0..16 {
            rtl.cycle();
            let fired_now: Vec<usize> = rtl
                .fired_per_rule()
                .iter()
                .enumerate()
                .filter(|(i, &c)| c > prev_fired[*i])
                .map(|(i, _)| schedule[i])
                .collect();
            prev_fired = rtl.fired_per_rule().to_vec();

            reference.begin_cycle();
            for &rule in &fired_now {
                assert!(
                    reference.step_rule(rule),
                    "seed {seed} cycle {cycle}: statically-fired rule {} \
                     aborts under one-rule-at-a-time replay",
                    td.rules[rule].name
                );
            }
            reference.end_cycle();

            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                assert_eq!(
                    rtl.get64(reg),
                    reference.get64(reg),
                    "seed {seed} cycle {cycle}: register {} diverges from \
                     the one-rule-at-a-time replay of the fired subset",
                    td.regs[r].name
                );
            }
        }
    }
}

/// On designs with only *definite* conflicts (no Maybe), the static scheme
/// agrees exactly with the dynamic scheme.
#[test]
fn static_matches_dynamic_on_definite_designs() {
    // Unconditional rules: all conflicts are definite.
    let mut b = DesignBuilder::new("definite");
    b.reg("x", 8, 1u64);
    b.reg("y", 8, 2u64);
    b.reg("z", 8, 0u64);
    b.rule("a", vec![wr0("x", rd0("x").add(k(8, 1)))]);
    b.rule("bb", vec![wr0("y", rd1("x").mul(k(8, 3)))]); // forwarding, no conflict
    b.rule("c", vec![wr0("x", k(8, 9))]); // definite conflict with rule a
    b.rule("d", vec![wr0("z", rd0("y").add(rd0("z")))]);
    b.schedule(["a", "bb", "c", "d"]);
    let td = check(&b.build()).unwrap();
    let mut dynamic = RtlSim::new(compile(&td, Scheme::Dynamic).unwrap());
    let mut stat = RtlSim::new(compile(&td, Scheme::Static).unwrap());
    for cycle in 0..32 {
        dynamic.cycle();
        stat.cycle();
        for r in 0..td.num_regs() {
            assert_eq!(
                dynamic.get64(RegId(r as u32)),
                stat.get64(RegId(r as u32)),
                "cycle {cycle}, register {}",
                td.regs[r].name
            );
        }
    }
}
