//! RTL substrate for Kôika: the synthesis-side pipeline that the paper's
//! Cuttlesim is measured against.
//!
//! This crate provides everything the paper's *baseline* needs, built from
//! scratch:
//!
//! * [`netlist`] — a hash-consed synchronous netlist IR with local constant
//!   folding;
//! * [`compile`] — the Kôika hardware compilation scheme (§2.2): one circuit
//!   per rule, dynamic read/write-set wires, a-posteriori conflict
//!   reconciliation — plus a leaner "Bluespec-style" static scheme for the
//!   paper's Fig. 2 comparison;
//! * [`sim`] — a levelized cycle-based netlist simulator that, like
//!   Verilator, evaluates **every gate every cycle** (the overhead §2.3
//!   describes);
//! * [`verilog`] — a structural-Verilog emitter over a deliberately small
//!   subset of the language, as Kôika's verified compiler does.
//!
//! # Examples
//!
//! ```
//! use koika::{ast::*, design::DesignBuilder, check};
//! use koika::device::{RegAccess, SimBackend};
//! use koika_rtl::{compile::{compile, Scheme}, sim::RtlSim};
//!
//! let mut b = DesignBuilder::new("counter");
//! b.reg("count", 8, 0u64);
//! b.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
//! let design = check::check(&b.build())?;
//!
//! let model = compile(&design, Scheme::Dynamic)?;
//! let mut sim = RtlSim::new(model);
//! sim.cycle();
//! assert_eq!(sim.get64(design.reg_id("count")), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod netlist;
pub mod sim;
pub mod verilog;

pub use compile::{compile, RtlError, RtlModel, Scheme};
pub use sim::RtlSim;
