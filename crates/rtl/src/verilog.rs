//! Structural Verilog emission from a compiled RTL model.
//!
//! Like Kôika's verified compiler, we emit a deliberately small subset of
//! Verilog: wire declarations with single continuous assignments (one per
//! netlist node) and one clocked `always` block updating the registers. The
//! output is golden-tested; its line count is the "Verilog SLOC" column of
//! Table 1.

use crate::compile::RtlModel;
use crate::netlist::{NlBin, NlUn, Node};
use std::fmt::Write as _;

/// Emits a single-module Verilog rendering of the model.
pub fn emit(model: &RtlModel) -> String {
    let nl = &model.netlist;
    let mut out = String::new();
    let _ = writeln!(out, "// Generated from Koika design `{}` ({:?} scheme).", model.name, model.scheme);
    let _ = writeln!(out, "module {}(input wire CLK);", sanitize(&model.name));

    for (i, r) in nl.regs.iter().enumerate() {
        let _ = writeln!(
            out,
            "  reg [{}:0] r{i} = {}'h{:x};  // {}",
            r.width - 1,
            r.width,
            r.init,
            r.name
        );
    }

    for (i, node) in nl.nodes().iter().enumerate() {
        let w = node.width();
        let rhs = match *node {
            Node::Const { w, v } => format!("{w}'h{v:x}"),
            Node::RegQ { reg, .. } => format!("r{reg}"),
            Node::Un { op, a, .. } => match op {
                NlUn::Not => format!("~n{}", a.0),
                NlUn::Neg => format!("-n{}", a.0),
                NlUn::Sext => format!("$signed(n{})", a.0),
                NlUn::Slice { lo } => format!("(n{} >> {lo})", a.0),
                NlUn::Mask => format!("n{}", a.0),
            },
            Node::Bin { op, a, b, .. } => {
                let (a, b) = (format!("n{}", a.0), format!("n{}", b.0));
                match op {
                    NlBin::Add => format!("({a} + {b})"),
                    NlBin::Sub => format!("({a} - {b})"),
                    NlBin::Mul => format!("({a} * {b})"),
                    NlBin::And => format!("({a} & {b})"),
                    NlBin::Or => format!("({a} | {b})"),
                    NlBin::Xor => format!("({a} ^ {b})"),
                    NlBin::Shl => format!("({a} << {b})"),
                    NlBin::Shr => format!("({a} >> {b})"),
                    NlBin::Sra => format!("($signed({a}) >>> {b})"),
                    NlBin::Eq => format!("({a} == {b})"),
                    NlBin::Ult => format!("({a} < {b})"),
                    NlBin::Slt => format!("($signed({a}) < $signed({b}))"),
                    NlBin::Concat => format!("{{{a}, {b}}}"),
                }
            }
            Node::Mux { c, t, f, .. } => format!("(n{} ? n{} : n{})", c.0, t.0, f.0),
        };
        let _ = writeln!(out, "  wire [{}:0] n{i} = {rhs};", w - 1);
    }

    let _ = writeln!(out, "  always @(posedge CLK) begin");
    for (i, r) in nl.regs.iter().enumerate() {
        if let Some(next) = r.next {
            let _ = writeln!(out, "    r{i} <= n{};", next.0);
        }
    }
    let _ = writeln!(out, "  end");
    let _ = writeln!(out, "endmodule");
    out
}

/// Line count of the emitted Verilog (Table 1's Verilog SLOC column).
pub fn sloc(model: &RtlModel) -> usize {
    emit(model).lines().filter(|l| !l.trim().is_empty()).count()
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::compile::{compile, Scheme};
    use koika::ast::*;
    use koika::check::check;
    use koika::design::DesignBuilder;

    #[test]
    fn golden_counter_module() {
        let mut b = DesignBuilder::new("counter");
        b.reg("count", 8, 0u64);
        b.rule("incr", vec![wr0("count", rd0("count").add(k(8, 1)))]);
        let td = check(&b.build()).unwrap();
        let model = compile(&td, Scheme::Dynamic).unwrap();
        let v = super::emit(&model);
        assert!(v.contains("module counter(input wire CLK);"), "{v}");
        assert!(v.contains("reg [7:0] r0 = 8'h0;"), "{v}");
        assert!(v.contains("always @(posedge CLK) begin"), "{v}");
        assert!(v.contains("r0 <= "), "{v}");
        assert!(v.contains("endmodule"), "{v}");
        assert!(super::sloc(&model) > 5);
    }

    #[test]
    fn static_scheme_is_leaner() {
        // With static conflict resolution there are no read-write-set wires,
        // so the emitted module is smaller — the Fig. 2 intuition.
        let mut b = DesignBuilder::new("two");
        b.reg("x", 8, 0u64);
        b.reg("y", 8, 0u64);
        b.rule("a", vec![wr0("x", rd0("y").add(k(8, 1)))]);
        b.rule("bb", vec![wr0("y", rd1("x").add(k(8, 2)))]);
        b.schedule(["a", "bb"]);
        let td = check(&b.build()).unwrap();
        let dynamic = compile(&td, Scheme::Dynamic).unwrap();
        let stat = compile(&td, Scheme::Static).unwrap();
        assert!(
            stat.netlist.len() <= dynamic.netlist.len(),
            "static {} vs dynamic {}",
            stat.netlist.len(),
            dynamic.netlist.len()
        );
    }
}
