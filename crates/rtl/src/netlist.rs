//! Netlist IR: the synchronous-circuit representation produced by the
//! Kôika→RTL compiler.
//!
//! A [`Netlist`] is a sea of combinational nodes over the current register
//! values ([`Node::RegQ`]), plus one *next-value* node per register. Nodes
//! are hash-consed (structurally deduplicated) and lightly constant-folded
//! at construction, mirroring the local simplifications real RTL generators
//! perform; node ids are therefore already in topological order, which the
//! cycle-based simulator exploits.
//!
//! All node widths are 1..=64 bits (the same fast path as the rest of the
//! workspace).

use std::collections::HashMap;

/// Identifier of a combinational node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Binary operators at the netlist level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NlBin {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right (operand-width aware).
    Sra,
    /// Equality (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Signed less-than (1-bit result).
    Slt,
    /// Concatenation (left operand high).
    Concat,
}

/// Unary operators at the netlist level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NlUn {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Sign extension from the operand's width.
    Sext,
    /// Extract bits `[lo, lo + width)`.
    Slice {
        /// First extracted bit.
        lo: u32,
    },
    /// Mask to the node's width (zero-extension / truncation).
    Mask,
}

/// A combinational node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Constant.
    Const {
        /// Width.
        w: u32,
        /// Value (masked).
        v: u64,
    },
    /// Current value of a register (its flip-flop `Q` output).
    RegQ {
        /// Width.
        w: u32,
        /// Flat register index.
        reg: u32,
    },
    /// Unary gate.
    Un {
        /// Result width.
        w: u32,
        /// Operator.
        op: NlUn,
        /// Operand.
        a: NodeId,
    },
    /// Binary gate.
    Bin {
        /// Result width.
        w: u32,
        /// Operator.
        op: NlBin,
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// 2:1 multiplexer: `c ? t : f`.
    Mux {
        /// Result width.
        w: u32,
        /// 1-bit select.
        c: NodeId,
        /// Selected when `c == 1`.
        t: NodeId,
        /// Selected when `c == 0`.
        f: NodeId,
    },
}

impl Node {
    /// The width of the value this node produces.
    pub fn width(&self) -> u32 {
        match self {
            Node::Const { w, .. }
            | Node::RegQ { w, .. }
            | Node::Un { w, .. }
            | Node::Bin { w, .. }
            | Node::Mux { w, .. } => *w,
        }
    }
}

/// A register in the netlist.
#[derive(Debug, Clone)]
pub struct NlReg {
    /// Diagnostic name.
    pub name: String,
    /// Width.
    pub width: u32,
    /// Reset value.
    pub init: u64,
    /// The node computing the next value (set by the compiler).
    pub next: Option<NodeId>,
}

/// A hash-consed synchronous netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    nodes: Vec<Node>,
    dedup: HashMap<Node, NodeId>,
    /// Registers, in the same flat order as the source design.
    pub regs: Vec<NlReg>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Netlist {
        Netlist::default()
    }

    /// The nodes in topological (creation) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of combinational nodes — the paper's intuition for circuit
    /// size/cost.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.dedup.insert(node, id);
        id
    }

    /// Declares a register; returns its flat index.
    pub fn add_reg(&mut self, name: impl Into<String>, width: u32, init: u64) -> u32 {
        assert!((1..=64).contains(&width), "RTL registers must be 1..=64 bits");
        let idx = self.regs.len() as u32;
        self.regs.push(NlReg {
            name: name.into(),
            width,
            init: init & mask(width),
            next: None,
        });
        idx
    }

    /// Sets a register's next-value node.
    pub fn set_next(&mut self, reg: u32, next: NodeId) {
        self.regs[reg as usize].next = Some(next);
    }

    /// A constant node.
    pub fn constant(&mut self, w: u32, v: u64) -> NodeId {
        self.intern(Node::Const { w, v: v & mask(w) })
    }

    /// The current-value node of a register.
    pub fn reg_q(&mut self, reg: u32) -> NodeId {
        let w = self.regs[reg as usize].width;
        self.intern(Node::RegQ { w, reg })
    }

    fn const_val(&self, id: NodeId) -> Option<u64> {
        match self.nodes[id.0 as usize] {
            Node::Const { v, .. } => Some(v),
            _ => None,
        }
    }

    /// A unary gate (with local constant folding).
    pub fn un(&mut self, w: u32, op: NlUn, a: NodeId) -> NodeId {
        let aw = self.nodes[a.0 as usize].width();
        if let Some(va) = self.const_val(a) {
            let v = match op {
                NlUn::Not => !va,
                NlUn::Neg => va.wrapping_neg(),
                NlUn::Sext => koika::bits::word::sext(aw, va),
                NlUn::Slice { lo } => {
                    if lo >= 64 {
                        0
                    } else {
                        va >> lo
                    }
                }
                NlUn::Mask => va,
            };
            return self.constant(w, v);
        }
        // A mask to the operand's own width is a true no-op (node values
        // are invariantly masked to their declared width). A *widening*
        // mask — the lowering of zext — preserves the value but not the
        // width, and Concat/Sext/Sra consumers read the operand's declared
        // width, so it must stay a real node.
        if matches!(op, NlUn::Mask) && w == aw {
            return a;
        }
        self.intern(Node::Un { w, op, a })
    }

    /// A binary gate (with local constant folding and identity
    /// simplification).
    pub fn bin(&mut self, w: u32, op: NlBin, a: NodeId, b: NodeId) -> NodeId {
        let aw = self.nodes[a.0 as usize].width();
        if let (Some(va), Some(vb)) = (self.const_val(a), self.const_val(b)) {
            use koika::bits::word;
            let v = match op {
                NlBin::Add => va.wrapping_add(vb),
                NlBin::Sub => va.wrapping_sub(vb),
                NlBin::Mul => va.wrapping_mul(vb),
                NlBin::And => va & vb,
                NlBin::Or => va | vb,
                NlBin::Xor => va ^ vb,
                NlBin::Shl => {
                    if vb >= 64 {
                        0
                    } else {
                        va << vb
                    }
                }
                NlBin::Shr => {
                    if vb >= 64 {
                        0
                    } else {
                        va >> vb
                    }
                }
                NlBin::Sra => word::sra(aw, va, vb),
                NlBin::Eq => (va == vb) as u64,
                NlBin::Ult => (va < vb) as u64,
                NlBin::Slt => word::slt(aw, va, vb),
                NlBin::Concat => {
                    let bw = self.nodes[b.0 as usize].width();
                    (va << bw) | vb
                }
            };
            return self.constant(w, v);
        }
        // Identity simplifications on boolean-ish operations.
        match op {
            NlBin::And => {
                if self.const_val(a) == Some(0) || self.const_val(b) == Some(0) {
                    return self.constant(w, 0);
                }
                if self.const_val(a) == Some(mask(w)) {
                    return b;
                }
                if self.const_val(b) == Some(mask(w)) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            NlBin::Or => {
                if self.const_val(a) == Some(0) {
                    return b;
                }
                if self.const_val(b) == Some(0) {
                    return a;
                }
                if self.const_val(a) == Some(mask(w)) || self.const_val(b) == Some(mask(w)) {
                    return self.constant(w, mask(w));
                }
                if a == b {
                    return a;
                }
            }
            NlBin::Xor => {
                if self.const_val(b) == Some(0) {
                    return a;
                }
                if self.const_val(a) == Some(0) {
                    return b;
                }
            }
            NlBin::Add | NlBin::Shl | NlBin::Shr | NlBin::Sub
                if self.const_val(b) == Some(0) =>
            {
                return a;
            }
            _ => {}
        }
        self.intern(Node::Bin { w, op, a, b })
    }

    /// A 2:1 mux (folds constant selects and equal arms).
    pub fn mux(&mut self, w: u32, c: NodeId, t: NodeId, f: NodeId) -> NodeId {
        match self.const_val(c) {
            Some(0) => return f,
            Some(_) => return t,
            None => {}
        }
        if t == f {
            return t;
        }
        self.intern(Node::Mux { w, c, t, f })
    }

    /// Dead-node elimination: rebuilds the netlist keeping only nodes
    /// reachable from the register next-value nodes and `extra_roots`,
    /// returning the remapping applied (old id → new id). Ids stay
    /// topological.
    pub fn prune(&mut self, extra_roots: &[NodeId]) -> Vec<Option<NodeId>> {
        let n = self.nodes.len();
        let mut live = vec![false; n];
        let mark = |live: &mut Vec<bool>, root: NodeId| {
            // Operands always precede users, so a reverse sweep after
            // seeding roots marks everything reachable.
            live[root.0 as usize] = true;
        };
        for r in &self.regs {
            if let Some(next) = r.next {
                mark(&mut live, next);
            }
        }
        for &r in extra_roots {
            mark(&mut live, r);
        }
        for i in (0..n).rev() {
            if !live[i] {
                continue;
            }
            match self.nodes[i] {
                Node::Un { a, .. } => live[a.0 as usize] = true,
                Node::Bin { a, b, .. } => {
                    live[a.0 as usize] = true;
                    live[b.0 as usize] = true;
                }
                Node::Mux { c, t, f, .. } => {
                    live[c.0 as usize] = true;
                    live[t.0 as usize] = true;
                    live[f.0 as usize] = true;
                }
                _ => {}
            }
        }
        let mut remap: Vec<Option<NodeId>> = vec![None; n];
        let mut new_nodes = Vec::new();
        for i in 0..n {
            if live[i] {
                let node = match self.nodes[i] {
                    Node::Un { w, op, a } => Node::Un {
                        w,
                        op,
                        a: remap[a.0 as usize].expect("operand is live"),
                    },
                    Node::Bin { w, op, a, b } => Node::Bin {
                        w,
                        op,
                        a: remap[a.0 as usize].expect("operand is live"),
                        b: remap[b.0 as usize].expect("operand is live"),
                    },
                    Node::Mux { w, c, t, f } => Node::Mux {
                        w,
                        c: remap[c.0 as usize].expect("operand is live"),
                        t: remap[t.0 as usize].expect("operand is live"),
                        f: remap[f.0 as usize].expect("operand is live"),
                    },
                    other => other,
                };
                remap[i] = Some(NodeId(new_nodes.len() as u32));
                new_nodes.push(node);
            }
        }
        self.nodes = new_nodes;
        self.dedup.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            self.dedup.insert(*node, NodeId(i as u32));
        }
        for r in &mut self.regs {
            if let Some(next) = r.next {
                r.next = remap[next.0 as usize];
            }
        }
        remap
    }

    /// Convenience: 1-bit OR.
    pub fn or1(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(1, NlBin::Or, a, b)
    }

    /// Convenience: 1-bit AND.
    pub fn and1(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.bin(1, NlBin::And, a, b)
    }

    /// Convenience: 1-bit NOT.
    pub fn not1(&mut self, a: NodeId) -> NodeId {
        self.un(1, NlUn::Not, a)
    }
}

pub(crate) fn mask(width: u32) -> u64 {
    koika::bits::word::mask(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut nl = Netlist::new();
        let r = nl.add_reg("r", 8, 0);
        let q1 = nl.reg_q(r);
        let q2 = nl.reg_q(r);
        assert_eq!(q1, q2);
        let one = nl.constant(8, 1);
        let a = nl.bin(8, NlBin::Add, q1, one);
        let b = nl.bin(8, NlBin::Add, q2, one);
        assert_eq!(a, b);
        assert_eq!(nl.len(), 3); // RegQ, Const, Add
    }

    #[test]
    fn constant_folding() {
        let mut nl = Netlist::new();
        let a = nl.constant(8, 200);
        let b = nl.constant(8, 100);
        let s = nl.bin(8, NlBin::Add, a, b);
        assert_eq!(nl.nodes()[s.0 as usize], Node::Const { w: 8, v: 44 });
        let one = nl.constant(1, 1);
        let m = nl.mux(8, one, a, b);
        assert_eq!(m, a);
    }

    #[test]
    fn identity_simplification() {
        let mut nl = Netlist::new();
        let r = nl.add_reg("r", 1, 0);
        let q = nl.reg_q(r);
        let zero = nl.constant(1, 0);
        assert_eq!(nl.or1(q, zero), q);
        assert_eq!(nl.and1(q, zero), zero);
        let ones = nl.constant(1, 1);
        assert_eq!(nl.and1(q, ones), q);
        assert_eq!(nl.mux(1, q, ones, ones), ones);
    }

    #[test]
    fn creation_order_is_topological() {
        let mut nl = Netlist::new();
        let r = nl.add_reg("r", 4, 3);
        let q = nl.reg_q(r);
        let c = nl.constant(4, 1);
        let s = nl.bin(4, NlBin::Add, q, c);
        let n = nl.un(4, NlUn::Not, s);
        for (i, node) in nl.nodes().iter().enumerate() {
            let ok = match node {
                Node::Un { a, .. } => (a.0 as usize) < i,
                Node::Bin { a, b, .. } => (a.0 as usize) < i && (b.0 as usize) < i,
                Node::Mux { c, t, f, .. } => {
                    (c.0 as usize) < i && (t.0 as usize) < i && (f.0 as usize) < i
                }
                _ => true,
            };
            assert!(ok, "node {i} references a later node");
        }
        let _ = n;
    }
}
