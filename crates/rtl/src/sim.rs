//! The cycle-based netlist simulator — our Verilator stand-in.
//!
//! Like Verilator on the structural Verilog that Kôika emits, this simulator
//! levelizes the circuit once (netlist creation order is already
//! topological) and then, **every cycle, evaluates every gate**: all rules'
//! circuits are computed and a-posteriori muxing discards the losers. This
//! is precisely the simulation overhead §2.3 of the paper attributes to
//! compiling for hardware and simulating sequentially, and the baseline
//! Cuttlesim is measured against in Fig. 1.
//!
//! The per-node dispatch cost is the same class as the Cuttlesim VM's
//! (a `match` over a flat instruction/node array), so the measured gap
//! between the two isolates the *algorithmic* difference — all-gates-every-
//! cycle versus sequential early-exit — rather than interpreter quality.

use crate::compile::RtlModel;
use crate::netlist::{NlBin, NlUn, Node};
use koika::bits::{word, Bits};
use koika::device::{RegAccess, SimBackend};
use koika::obs::{FailureReason, Observer};
use koika::snapshot::{Snapshot, SnapshotError};
use koika::tir::RegId;

/// A running RTL simulation.
#[derive(Debug, Clone)]
pub struct RtlSim {
    model: RtlModel,
    /// Current register values.
    regs: Vec<u64>,
    /// Per-node wire values, recomputed every cycle.
    vals: Vec<u64>,
    cycles: u64,
    fired: u64,
    fired_per_rule: Vec<u64>,
    /// Scratch buffer for `cycle_obs` boundary diffs.
    obs_prev: Vec<u64>,
}

impl RtlSim {
    /// Creates a simulation with registers at their reset values.
    pub fn new(model: RtlModel) -> RtlSim {
        let regs: Vec<u64> = model.netlist.regs.iter().map(|r| r.init).collect();
        let vals = vec![0; model.netlist.len()];
        let nrules = model.fires.len();
        RtlSim {
            model,
            regs,
            vals,
            cycles: 0,
            fired: 0,
            fired_per_rule: vec![0; nrules],
            obs_prev: Vec::new(),
        }
    }

    /// The compiled model.
    pub fn model(&self) -> &RtlModel {
        &self.model
    }

    /// The design fingerprint stamped into (and checked against) snapshots.
    fn fingerprint(&self) -> u64 {
        koika::snapshot::design_fingerprint(
            &self.model.name,
            self.model.netlist.regs.iter().map(|r| (r.name.as_str(), r.width)),
        )
    }

    /// Per-scheduled-rule commit counts (schedule order; see
    /// [`RtlModel::fire_names`]).
    pub fn fired_per_rule(&self) -> &[u64] {
        &self.fired_per_rule
    }

    /// Evaluates the combinational fabric against the current register
    /// values (without latching) — the equivalent of settling the wires
    /// mid-cycle.
    pub fn settle(&mut self) {
        let nodes = self.model.netlist.nodes();
        for (i, node) in nodes.iter().enumerate() {
            self.vals[i] = match *node {
                Node::Const { v, .. } => v,
                Node::RegQ { reg, .. } => self.regs[reg as usize],
                Node::Un { w, op, a } => {
                    let va = self.vals[a.0 as usize];
                    let aw = nodes[a.0 as usize].width();
                    let raw = match op {
                        NlUn::Not => !va,
                        NlUn::Neg => va.wrapping_neg(),
                        NlUn::Sext => word::sext(aw, va),
                        NlUn::Slice { lo } => {
                            if lo >= 64 {
                                0
                            } else {
                                va >> lo
                            }
                        }
                        NlUn::Mask => va,
                    };
                    raw & word::mask(w)
                }
                Node::Bin { w, op, a, b } => {
                    let va = self.vals[a.0 as usize];
                    let vb = self.vals[b.0 as usize];
                    let aw = nodes[a.0 as usize].width();
                    let raw = match op {
                        NlBin::Add => va.wrapping_add(vb),
                        NlBin::Sub => va.wrapping_sub(vb),
                        NlBin::Mul => va.wrapping_mul(vb),
                        NlBin::And => va & vb,
                        NlBin::Or => va | vb,
                        NlBin::Xor => va ^ vb,
                        NlBin::Shl => {
                            if vb >= 64 {
                                0
                            } else {
                                va << vb
                            }
                        }
                        NlBin::Shr => {
                            if vb >= 64 {
                                0
                            } else {
                                va >> vb
                            }
                        }
                        NlBin::Sra => word::sra(aw, va, vb),
                        NlBin::Eq => (va == vb) as u64,
                        NlBin::Ult => (va < vb) as u64,
                        NlBin::Slt => word::slt(aw, va, vb),
                        NlBin::Concat => {
                            let bw = nodes[b.0 as usize].width();
                            (va << bw) | vb
                        }
                    };
                    raw & word::mask(w)
                }
                Node::Mux { c, t, f, .. } => {
                    if self.vals[c.0 as usize] != 0 {
                        self.vals[t.0 as usize]
                    } else {
                        self.vals[f.0 as usize]
                    }
                }
            };
        }
    }
}

impl RegAccess for RtlSim {
    fn get64(&self, reg: RegId) -> u64 {
        self.regs[reg.0 as usize]
    }

    fn set64(&mut self, reg: RegId, value: u64) {
        let w = self.model.netlist.regs[reg.0 as usize].width;
        self.regs[reg.0 as usize] = value & word::mask(w);
    }
}

impl SimBackend for RtlSim {
    fn cycle(&mut self) {
        self.settle();
        for (i, &fire) in self.model.fires.iter().enumerate() {
            if self.vals[fire.0 as usize] != 0 {
                self.fired += 1;
                self.fired_per_rule[i] += 1;
            }
        }
        for i in 0..self.regs.len() {
            if let Some(next) = self.model.netlist.regs[i].next {
                self.regs[i] = self.vals[next.0 as usize];
            }
        }
        self.cycles += 1;
    }

    fn cycle_obs(&mut self, obs: &mut dyn Observer) {
        let mut prev = std::mem::take(&mut self.obs_prev);
        prev.clear();
        prev.extend_from_slice(&self.regs);
        let cycle = self.cycles;
        obs.cycle_start(cycle);
        self.settle();
        for (i, &fire) in self.model.fires.iter().enumerate() {
            // Report the declaration-order rule index, like the other
            // backends (schedule position falls back to itself for
            // hand-built models without scheduling metadata).
            let rule = self.model.sched_rules.get(i).copied().unwrap_or(i);
            obs.rule_attempt(rule);
            if self.vals[fire.0 as usize] != 0 {
                self.fired += 1;
                self.fired_per_rule[i] += 1;
                obs.rule_commit(rule);
            } else {
                // The netlist only exposes the final will-fire wire; abort
                // and conflict are indistinguishable here.
                obs.rule_fail(rule, FailureReason::Unspecified);
            }
        }
        for i in 0..self.regs.len() {
            if let Some(next) = self.model.netlist.regs[i].next {
                self.regs[i] = self.vals[next.0 as usize];
            }
        }
        self.cycles += 1;
        for (i, &old) in prev.iter().enumerate() {
            let new = self.regs[i];
            if new != old {
                obs.reg_write(RegId(i as u32), old, new);
            }
        }
        self.obs_prev = prev;
        obs.cycle_end(cycle);
    }

    fn cycle_count(&self) -> u64 {
        self.cycles
    }

    fn rules_fired(&self) -> u64 {
        self.fired
    }

    fn snapshot(&self) -> Snapshot {
        // Commit counters live in schedule order here; export them in
        // declaration order like the other backends so snapshots are
        // portable.
        let nrules = self
            .model
            .sched_rules
            .iter()
            .map(|&r| r + 1)
            .max()
            .unwrap_or(self.fired_per_rule.len());
        let mut decl = vec![0u64; nrules];
        for (i, &count) in self.fired_per_rule.iter().enumerate() {
            let rule = self.model.sched_rules.get(i).copied().unwrap_or(i);
            decl[rule] += count;
        }
        Snapshot {
            design: self.model.name.clone(),
            cycles: self.cycles,
            fired: self.fired,
            fingerprint: self.fingerprint(),
            fired_per_rule: decl,
            regs: self
                .model
                .netlist
                .regs
                .iter()
                .zip(&self.regs)
                .map(|(r, &v)| Bits::new(r.width, v))
                .collect(),
        }
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let widths: Vec<u32> = self.model.netlist.regs.iter().map(|r| r.width).collect();
        snap.check_shape(&self.model.name, &widths, self.fingerprint())?;
        for (i, v) in snap.regs.iter().enumerate() {
            self.regs[i] = v.low_u64();
        }
        self.cycles = snap.cycles;
        self.fired = snap.fired;
        for (i, slot) in self.fired_per_rule.iter_mut().enumerate() {
            let rule = self.model.sched_rules.get(i).copied().unwrap_or(i);
            *slot = snap.fired_per_rule.get(rule).copied().unwrap_or(0);
        }
        Ok(())
    }

    fn as_reg_access(&mut self) -> &mut dyn RegAccess {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{NlBin, NlUn, Netlist};

    /// Evaluates a single-gate netlist and compares against `word` helpers.
    fn eval_bin(w: u32, op: NlBin, a: u64, b: u64) -> u64 {
        let mut nl = Netlist::new();
        let ra = nl.add_reg("a", w.min(64), a);
        let rb = nl.add_reg("b", w.min(64), b);
        let qa = nl.reg_q(ra);
        let qb = nl.reg_q(rb);
        let out = nl.bin(w, op, qa, qb);
        let r = nl.add_reg("out", w, 0);
        nl.set_next(r, out);
        let model = RtlModel {
            name: "t".into(),
            netlist: nl,
            fires: Vec::new(),
            fire_names: Vec::new(),
            sched_rules: Vec::new(),
            scheme: crate::Scheme::Dynamic,
        };
        let mut sim = RtlSim::new(model);
        sim.cycle();
        sim.get64(RegId(2))
    }

    #[test]
    fn gate_evaluation_matches_word_arithmetic() {
        for (a, b) in [(0u64, 0u64), (5, 3), (0xffff, 1), (0xdead_beef, 0x1234)] {
            let w = 32;
            let m = word::mask(w);
            let (a, b) = (a & m, b & m);
            assert_eq!(eval_bin(w, NlBin::Add, a, b), a.wrapping_add(b) & m);
            assert_eq!(eval_bin(w, NlBin::Sub, a, b), a.wrapping_sub(b) & m);
            assert_eq!(eval_bin(w, NlBin::Mul, a, b), a.wrapping_mul(b) & m);
            assert_eq!(eval_bin(w, NlBin::And, a, b), a & b);
            assert_eq!(eval_bin(w, NlBin::Or, a, b), a | b);
            assert_eq!(eval_bin(w, NlBin::Xor, a, b), a ^ b);
            assert_eq!(eval_bin(1, NlBin::Eq, a & 1, b & 1), ((a & 1) == (b & 1)) as u64);
            assert_eq!(eval_bin(1, NlBin::Ult, a & 1, b & 1), ((a & 1) < (b & 1)) as u64);
            assert_eq!(
                eval_bin(w, NlBin::Sra, a, b % 32),
                word::sra(w, a, b % 32)
            );
        }
    }

    #[test]
    fn unary_gates_match_word_arithmetic() {
        let mut nl = Netlist::new();
        let r = nl.add_reg("a", 8, 0x90);
        let q = nl.reg_q(r);
        let not = nl.un(8, NlUn::Not, q);
        let sext = nl.un(16, NlUn::Sext, q);
        let sext = nl.un(16, NlUn::Mask, sext);
        let slice = nl.un(4, NlUn::Slice { lo: 4 }, q);
        let slice = nl.un(4, NlUn::Mask, slice);
        for (i, node) in [not, sext, slice].into_iter().enumerate() {
            let out = nl.add_reg(format!("o{i}"), nl.nodes()[node.0 as usize].width(), 0);
            nl.set_next(out, node);
        }
        let model = RtlModel {
            name: "u".into(),
            netlist: nl,
            fires: Vec::new(),
            fire_names: Vec::new(),
            sched_rules: Vec::new(),
            scheme: crate::Scheme::Dynamic,
        };
        let mut sim = RtlSim::new(model);
        sim.cycle();
        assert_eq!(sim.get64(RegId(1)), 0x6f); // !0x90 & 0xff
        assert_eq!(sim.get64(RegId(2)), 0xff90); // sext8->16 of 0x90
        assert_eq!(sim.get64(RegId(3)), 0x9); // bits [7:4]
    }

    #[test]
    fn settle_does_not_latch() {
        let mut nl = Netlist::new();
        let r = nl.add_reg("n", 8, 7);
        let q = nl.reg_q(r);
        let one = nl.constant(8, 1);
        let next = nl.bin(8, NlBin::Add, q, one);
        nl.set_next(r, next);
        let model = RtlModel {
            name: "s".into(),
            netlist: nl,
            fires: Vec::new(),
            fire_names: Vec::new(),
            sched_rules: Vec::new(),
            scheme: crate::Scheme::Dynamic,
        };
        let mut sim = RtlSim::new(model);
        sim.settle();
        sim.settle();
        assert_eq!(sim.get64(RegId(0)), 7, "settling must not advance state");
        sim.cycle();
        assert_eq!(sim.get64(RegId(0)), 8);
    }
}
