//! The Kôika hardware compilation scheme (§2.2 of the paper): one circuit
//! per rule, wired together in schedule order, with a-posteriori conflict
//! reconciliation.
//!
//! Each rule is compiled *in isolation* into combinational logic that
//! computes, for every register, candidate write values and write-enable
//! wires, plus an `abort` wire. Scheduling logic then threads a *wire log*
//! (per-register `r1`/`w0`/`w1` flags and data wires) from rule to rule:
//! a rule's effects are muxed in only if it did not abort. Finally each
//! register's next value muxes `d1`/`d0`/hold.
//!
//! Crucially — and this is the overhead the paper measures — **every rule's
//! circuit exists and is evaluated every cycle**; losers are discarded by
//! muxes. The [`crate::sim`] module evaluates this netlist the way Verilator
//! evaluates Verilog: all gates, every cycle.
//!
//! Two schemes are provided:
//!
//! * [`Scheme::Dynamic`] — faithful to Kôika: per-register read/write-set
//!   wires, conflicts detected dynamically in hardware;
//! * [`Scheme::Static`] — a "Bluespec-style" stand-in for the paper's Fig. 2
//!   baseline: conflicts between rules are resolved at compile time from the
//!   static analysis (a conservative conflict matrix gates `will_fire`), so
//!   no per-register tracking wires exist. Leaner circuits, possibly more
//!   conservative scheduling.

use crate::netlist::{mask, Netlist, NlBin, NlUn, NodeId};
use koika::analysis::{analyze, ScheduleAssumption};
use koika::ast::{BinOp, Port, UnOp};
use koika::tir::{TAction, TDesign, TExpr};
use std::error::Error;
use std::fmt;

/// Which conflict-resolution scheme to compile with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Kôika-style dynamic per-register conflict detection.
    #[default]
    Dynamic,
    /// Bluespec-style static conflict resolution (Fig. 2 baseline).
    Static,
}

/// An error preventing RTL compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A register is wider than the netlist simulator's 64-bit datapath.
    RegTooWide {
        /// Register name.
        reg: String,
        /// Its width.
        width: u32,
    },
    /// An intermediate value is wider than 64 bits.
    ExprTooWide {
        /// The rule containing it.
        rule: String,
        /// Its width.
        width: u32,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::RegTooWide { reg, width } => {
                write!(f, "register {reg:?} is {width} bits; RTL datapath is 64")
            }
            RtlError::ExprTooWide { rule, width } => {
                write!(f, "rule {rule:?} has a {width}-bit value; RTL datapath is 64")
            }
        }
    }
}

impl Error for RtlError {}

/// A compiled RTL model: the netlist plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct RtlModel {
    /// Design name.
    pub name: String,
    /// The netlist.
    pub netlist: Netlist,
    /// Per scheduled rule, the 1-bit wire that is true when the rule
    /// commits this cycle (for telemetry and differential testing).
    pub fires: Vec<NodeId>,
    /// Names of the scheduled rules, parallel to `fires`.
    pub fire_names: Vec<String>,
    /// Declaration-order rule index of each scheduled rule, parallel to
    /// `fires` — maps schedule positions back to `TDesign::rules` so
    /// observers report the same rule indices as the other backends.
    pub sched_rules: Vec<usize>,
    /// The compilation scheme used.
    pub scheme: Scheme,
}

#[derive(Clone, Copy)]
struct WireLog {
    r1: NodeId,
    w0: NodeId,
    w1: NodeId,
    d0: NodeId,
    d1: NodeId,
}

struct RuleCtx<'a> {
    nl: &'a mut Netlist,
    design: &'a TDesign,
    rule_name: &'a str,
    scheme: Scheme,
    log: Vec<WireLog>,
    /// Rule-local (r1, w0, w1) flags, used for the static scheme's
    /// intra-rule conflict checks.
    rflags: Vec<(NodeId, NodeId, NodeId)>,
    locals: Vec<Option<NodeId>>,
    guard: NodeId,
    abort: NodeId,
    error: Option<RtlError>,
}

impl RuleCtx<'_> {
    fn fail_width(&mut self, w: u32) -> bool {
        if w > 64 {
            if self.error.is_none() {
                self.error = Some(RtlError::ExprTooWide {
                    rule: self.rule_name.to_string(),
                    width: w,
                });
            }
            false
        } else {
            true
        }
    }

    fn add_abort(&mut self, cond: NodeId) {
        let gated = self.nl.and1(self.guard, cond);
        self.abort = self.nl.or1(self.abort, gated);
    }

    /// The flags consulted by conflict checks: the accumulated log for the
    /// dynamic scheme, the rule-local flags for the static scheme (whose
    /// inter-rule conflicts are handled by the compile-time matrix).
    fn check_flags(&self, i: usize) -> (NodeId, NodeId, NodeId) {
        match self.scheme {
            Scheme::Dynamic => (self.log[i].r1, self.log[i].w0, self.log[i].w1),
            Scheme::Static => self.rflags[i],
        }
    }

    fn record_r1(&mut self, i: usize) {
        let g = self.guard;
        match self.scheme {
            Scheme::Dynamic => self.log[i].r1 = self.nl.or1(self.log[i].r1, g),
            Scheme::Static => self.rflags[i].0 = self.nl.or1(self.rflags[i].0, g),
        }
    }

    fn record_w(&mut self, i: usize, port: Port, enable: NodeId) {
        match port {
            Port::P0 => {
                self.log[i].w0 = self.nl.or1(self.log[i].w0, enable);
                if self.scheme == Scheme::Static {
                    self.rflags[i].1 = self.nl.or1(self.rflags[i].1, enable);
                }
            }
            Port::P1 => {
                self.log[i].w1 = self.nl.or1(self.log[i].w1, enable);
                if self.scheme == Scheme::Static {
                    self.rflags[i].2 = self.nl.or1(self.rflags[i].2, enable);
                }
            }
        }
    }

    fn add_explicit_abort(&mut self) {
        let g = self.guard;
        self.abort = self.nl.or1(self.abort, g);
    }

    fn idx_bits(len: u32) -> u32 {
        len.trailing_zeros().max(1)
    }

    /// Selects, by index wire, one of the per-element wires.
    fn mux_tree(&mut self, w: u32, idx: NodeId, bit: u32, base: usize, len: usize, f: &mut impl FnMut(&mut Netlist, usize) -> NodeId) -> NodeId {
        if len == 1 {
            return f(self.nl, base);
        }
        let half = len / 2;
        let lo = self.mux_tree(w, idx, bit - 1, base, half, f);
        let hi = self.mux_tree(w, idx, bit - 1, base + half, half, f);
        let sel = self.nl.un(1, NlUn::Slice { lo: bit - 1 }, idx);
        let sel = self.nl.un(1, NlUn::Mask, sel);
        self.nl.mux(w, sel, hi, lo)
    }

    fn read(&mut self, port: Port, reg: u32) -> NodeId {
        let i = reg as usize;
        let entry = self.log[i];
        let (_, cw0, cw1) = self.check_flags(i);
        let q = self.nl.reg_q(reg);
        match port {
            Port::P0 => {
                let conflict = self.nl.or1(cw0, cw1);
                self.add_abort(conflict);
                q
            }
            Port::P1 => {
                self.add_abort(cw1);
                let w = self.design.regs[i].width;
                let value = self.nl.mux(w, entry.w0, entry.d0, q);
                // Record the read at port 1 (used by later write-0 checks).
                self.record_r1(i);
                value
            }
        }
    }

    fn write(&mut self, port: Port, reg: u32, v: NodeId) {
        let i = reg as usize;
        let entry = self.log[i];
        let (cr1, cw0, cw1) = self.check_flags(i);
        let w = self.design.regs[i].width;
        let g = self.guard;
        match port {
            Port::P0 => {
                let c1 = self.nl.or1(cr1, cw0);
                let conflict = self.nl.or1(c1, cw1);
                self.add_abort(conflict);
                self.record_w(i, Port::P0, g);
                self.log[i].d0 = self.nl.mux(w, g, v, entry.d0);
            }
            Port::P1 => {
                self.add_abort(cw1);
                self.record_w(i, Port::P1, g);
                self.log[i].d1 = self.nl.mux(w, g, v, entry.d1);
            }
        }
    }

    fn expr(&mut self, e: &TExpr) -> NodeId {
        if !self.fail_width(e.width()) {
            return self.nl.constant(1, 0);
        }
        match e {
            TExpr::Const { w, v } => self.nl.constant(*w, v.to_u64()),
            TExpr::Var { slot, .. } => self.locals[*slot as usize]
                .expect("checker guarantees definite assignment"),
            TExpr::Read { port, reg, .. } => self.read(*port, reg.0),
            TExpr::ReadArr {
                w,
                port,
                base,
                len,
                idx,
            } => {
                let idxn = self.expr(idx);
                let bits = Self::idx_bits(*len);
                let idxn = {
                    let m = self.nl.constant(idx.width().min(64), mask(bits.min(idx.width())));
                    self.nl.bin(bits, NlBin::And, idxn, m)
                };
                // Selected-element conflict check.
                match port {
                    Port::P0 => {
                        let flags: Vec<_> = (0..self.log.len()).map(|i| self.check_flags(i)).collect();
                        let conflict = self.mux_tree(1, idxn, bits, base.0 as usize, *len as usize, &mut |nl, i| {
                            nl.bin(1, NlBin::Or, flags[i].1, flags[i].2)
                        });
                        self.add_abort(conflict);
                        self.mux_tree(*w, idxn, bits, base.0 as usize, *len as usize, &mut |nl, i| {
                            nl.reg_q(i as u32)
                        })
                    }
                    Port::P1 => {
                        let flags: Vec<_> = (0..self.log.len()).map(|i| self.check_flags(i)).collect();
                        let conflict = self.mux_tree(1, idxn, bits, base.0 as usize, *len as usize, &mut |_nl, i| flags[i].2);
                        self.add_abort(conflict);
                        // Record r1 on the selected element.
                        let g = self.guard;
                        for e in 0..*len {
                            let i = base.0 as usize + e as usize;
                            let sel = {
                                let en = self.nl.constant(bits, e as u64);
                                self.nl.bin(1, NlBin::Eq, idxn, en)
                            };
                            let gsel = self.nl.and1(g, sel);
                            match self.scheme {
                                Scheme::Dynamic => {
                                    self.log[i].r1 = self.nl.or1(self.log[i].r1, gsel)
                                }
                                Scheme::Static => {
                                    self.rflags[i].0 = self.nl.or1(self.rflags[i].0, gsel)
                                }
                            }
                        }
                        let log = self.log.clone();
                        self.mux_tree(*w, idxn, bits, base.0 as usize, *len as usize, &mut |nl, i| {
                            let q = nl.reg_q(i as u32);
                            nl.mux(*w, log[i].w0, log[i].d0, q)
                        })
                    }
                }
            }
            TExpr::Un { w, op, a } => {
                let an = self.expr(a);
                match op {
                    UnOp::Not => self.nl.un(*w, NlUn::Not, an),
                    UnOp::Neg => {
                        let n = self.nl.un(*w, NlUn::Neg, an);
                        let m = self.nl.constant(*w, mask(*w));
                        self.nl.bin(*w, NlBin::And, n, m)
                    }
                    UnOp::Zext(_) => self.nl.un(*w, NlUn::Mask, an),
                    UnOp::Sext(_) => {
                        if *w > a.width() {
                            let s = self.nl.un(*w, NlUn::Sext, an);
                            let m = self.nl.constant(*w, mask(*w));
                            self.nl.bin(*w, NlBin::And, s, m)
                        } else {
                            an
                        }
                    }
                    UnOp::Slice { lo, width } => {
                        if *lo >= 64 {
                            self.nl.constant(*width, 0)
                        } else {
                            let s = self.nl.un(*width, NlUn::Slice { lo: *lo }, an);
                            self.nl.un(*width, NlUn::Mask, s)
                        }
                    }
                }
            }
            TExpr::Bin { w, op, a, b } => {
                let an = self.expr(a);
                let bn = self.expr(b);
                let raw = |op| -> NlBin { op };
                let masked = |this: &mut Self, n: NodeId| {
                    let m = this.nl.constant(*w, mask(*w));
                    this.nl.bin(*w, NlBin::And, n, m)
                };
                match op {
                    BinOp::Add => {
                        let n = self.nl.bin(*w, raw(NlBin::Add), an, bn);
                        masked(self, n)
                    }
                    BinOp::Sub => {
                        let n = self.nl.bin(*w, NlBin::Sub, an, bn);
                        masked(self, n)
                    }
                    BinOp::Mul => {
                        let n = self.nl.bin(*w, NlBin::Mul, an, bn);
                        masked(self, n)
                    }
                    BinOp::And => self.nl.bin(*w, NlBin::And, an, bn),
                    BinOp::Or => self.nl.bin(*w, NlBin::Or, an, bn),
                    BinOp::Xor => self.nl.bin(*w, NlBin::Xor, an, bn),
                    BinOp::Shl => {
                        let n = self.nl.bin(*w, NlBin::Shl, an, bn);
                        masked(self, n)
                    }
                    BinOp::Shr => self.nl.bin(*w, NlBin::Shr, an, bn),
                    BinOp::Sra => {
                        let n = self.nl.bin(*w, NlBin::Sra, an, bn);
                        masked(self, n)
                    }
                    BinOp::Eq => self.nl.bin(1, NlBin::Eq, an, bn),
                    BinOp::Ne => {
                        let e = self.nl.bin(1, NlBin::Eq, an, bn);
                        self.nl.not1(e)
                    }
                    BinOp::Ult => self.nl.bin(1, NlBin::Ult, an, bn),
                    BinOp::Ule => {
                        let gt = self.nl.bin(1, NlBin::Ult, bn, an);
                        self.nl.not1(gt)
                    }
                    BinOp::Slt => self.nl.bin(1, NlBin::Slt, an, bn),
                    BinOp::Sle => {
                        let gt = self.nl.bin(1, NlBin::Slt, bn, an);
                        self.nl.not1(gt)
                    }
                    BinOp::Concat => self.nl.bin(*w, NlBin::Concat, an, bn),
                }
            }
            TExpr::Select { w, c, t, f } => {
                let cn = self.expr(c);
                let tn = self.expr(t);
                let fn_ = self.expr(f);
                self.nl.mux(*w, cn, tn, fn_)
            }
        }
    }

    fn actions(&mut self, actions: &[TAction]) {
        for a in actions {
            if self.error.is_some() {
                return;
            }
            match a {
                TAction::Let { slot, e } => {
                    let v = self.expr(e);
                    let slot = *slot as usize;
                    if slot >= self.locals.len() {
                        self.locals.resize(slot + 1, None);
                    }
                    self.locals[slot] = Some(v);
                }
                TAction::Write { port, reg, e } => {
                    let v = self.expr(e);
                    self.write(*port, reg.0, v);
                }
                TAction::WriteArr {
                    port,
                    base,
                    len,
                    idx,
                    e,
                } => {
                    let idxn = self.expr(idx);
                    let bits = Self::idx_bits(*len);
                    let idxn = {
                        let m = self.nl.constant(idx.width().min(64), mask(bits.min(idx.width())));
                        self.nl.bin(bits, NlBin::And, idxn, m)
                    };
                    let v = self.expr(e);
                    // Selected-element conflict check.
                    let flags: Vec<_> = (0..self.log.len()).map(|i| self.check_flags(i)).collect();
                    let conflict = match port {
                        Port::P0 => self.mux_tree(1, idxn, bits, base.0 as usize, *len as usize, &mut |nl, i| {
                            let c = nl.bin(1, NlBin::Or, flags[i].0, flags[i].1);
                            nl.bin(1, NlBin::Or, c, flags[i].2)
                        }),
                        Port::P1 => self.mux_tree(1, idxn, bits, base.0 as usize, *len as usize, &mut |_nl, i| flags[i].2),
                    };
                    self.add_abort(conflict);
                    // Decoded per-element write enables.
                    let g = self.guard;
                    for el in 0..*len {
                        let i = base.0 as usize + el as usize;
                        let w = self.design.regs[i].width;
                        let sel = {
                            let en = self.nl.constant(bits, el as u64);
                            self.nl.bin(1, NlBin::Eq, idxn, en)
                        };
                        let gsel = self.nl.and1(g, sel);
                        let entry = self.log[i];
                        self.record_w(i, *port, gsel);
                        match port {
                            Port::P0 => {
                                self.log[i].d0 = self.nl.mux(w, gsel, v, entry.d0);
                            }
                            Port::P1 => {
                                self.log[i].d1 = self.nl.mux(w, gsel, v, entry.d1);
                            }
                        }
                    }
                }
                TAction::If { c, t, f } => {
                    let cn = self.expr(c);
                    let saved_guard = self.guard;
                    let saved_log = self.log.clone();
                    let saved_rflags = self.rflags.clone();
                    let saved_locals = self.locals.clone();

                    self.guard = self.nl.and1(saved_guard, cn);
                    self.actions(t);
                    let log_t = std::mem::replace(&mut self.log, saved_log);
                    let rflags_t = std::mem::replace(&mut self.rflags, saved_rflags);
                    let locals_t = std::mem::replace(&mut self.locals, saved_locals);

                    let ncn = self.nl.not1(cn);
                    self.guard = self.nl.and1(saved_guard, ncn);
                    self.actions(f);
                    self.guard = saved_guard;

                    // Merge the logs and locals of the two branches.
                    for (i, &a) in rflags_t.iter().enumerate() {
                        let b = self.rflags[i];
                        self.rflags[i] = (
                            self.nl.mux(1, cn, a.0, b.0),
                            self.nl.mux(1, cn, a.1, b.1),
                            self.nl.mux(1, cn, a.2, b.2),
                        );
                    }
                    for (i, &a) in log_t.iter().enumerate() {
                        let w = self.design.regs[i].width;
                        let b = self.log[i];
                        self.log[i] = WireLog {
                            r1: self.nl.mux(1, cn, a.r1, b.r1),
                            w0: self.nl.mux(1, cn, a.w0, b.w0),
                            w1: self.nl.mux(1, cn, a.w1, b.w1),
                            d0: self.nl.mux(w, cn, a.d0, b.d0),
                            d1: self.nl.mux(w, cn, a.d1, b.d1),
                        };
                    }
                    for (slot, tv) in locals_t.iter().enumerate() {
                        let cur = self.locals.get(slot).copied().flatten();
                        let merged = match (tv, cur) {
                            (Some(a), Some(b)) => {
                                let w = self.nl.nodes()[a.0 as usize].width();
                                Some(self.nl.mux(w, cn, *a, b))
                            }
                            (Some(a), None) => Some(*a),
                            (None, b) => b,
                        };
                        if slot >= self.locals.len() {
                            self.locals.resize(slot + 1, None);
                        }
                        self.locals[slot] = merged;
                    }
                }
                TAction::Abort => self.add_explicit_abort(),
                TAction::Named { body, .. } => self.actions(body),
            }
        }
    }
}

/// Statically-known conflict between two rules (for [`Scheme::Static`]).
fn static_conflict(a: &koika::analysis::RuleSummary, b: &koika::analysis::RuleSummary) -> bool {
    a.flags.iter().zip(&b.flags).any(|(fa, fb)| {
        let (aw, ar1) = (fa.may_write(), fa.r1.possible());
        let a_w0 = fa.w0.possible();
        let a_w1 = fa.w1.possible();
        let b_r0 = fb.r0.possible();
        let b_r1 = fb.r1.possible();
        let b_w0 = fb.w0.possible();
        let b_w1 = fb.w1.possible();
        (aw && b_r0)
            || (a_w1 && b_r1)
            || ((ar1 || a_w0 || a_w1) && b_w0)
            || (a_w1 && b_w1)
    })
}

/// Compiles a checked design into an RTL model.
///
/// # Errors
///
/// Returns [`RtlError`] if the design uses values wider than 64 bits.
pub fn compile(design: &TDesign, scheme: Scheme) -> Result<RtlModel, RtlError> {
    for r in &design.regs {
        if r.width > 64 {
            return Err(RtlError::RegTooWide {
                reg: r.name.clone(),
                width: r.width,
            });
        }
    }
    let analysis = analyze(design, ScheduleAssumption::Declared);

    let mut nl = Netlist::new();
    for r in &design.regs {
        nl.add_reg(r.name.clone(), r.width, r.init.to_u64());
    }

    // The initial cycle log: nothing read or written; data wires default to
    // the registers' current values (don't-care until a write enables them).
    let zero1 = nl.constant(1, 0);
    let mut cycle_log: Vec<WireLog> = (0..design.num_regs())
        .map(|i| {
            let q = nl.reg_q(i as u32);
            WireLog {
                r1: zero1,
                w0: zero1,
                w1: zero1,
                d0: q,
                d1: q,
            }
        })
        .collect();

    let mut fires = Vec::new();
    let mut fire_names = Vec::new();
    for (pos, &ri) in design.schedule.iter().enumerate() {
        let rule = &design.rules[ri];
        let true1 = nl.constant(1, 1);
        let rflags = vec![(zero1, zero1, zero1); design.num_regs()];
        let mut ctx = RuleCtx {
            nl: &mut nl,
            design,
            rule_name: &rule.name,
            scheme,
            log: cycle_log.clone(),
            rflags,
            locals: vec![None; rule.slot_widths.len()],
            guard: true1,
            abort: zero1,
            error: None,
        };
        ctx.actions(&rule.body);
        let abort = ctx.abort;
        let rule_log = ctx.log;
        if let Some(e) = ctx.error {
            return Err(e);
        }

        // will_fire: no abort, and (static scheme) no earlier conflicting
        // rule fired.
        let mut fire = nl.not1(abort);
        if scheme == Scheme::Static {
            for (j, &rj) in design.schedule[..pos].iter().enumerate() {
                if static_conflict(&analysis.rules[rj], &analysis.rules[ri]) {
                    let njf = nl.not1(fires[j]);
                    fire = nl.and1(fire, njf);
                }
            }
        }

        // Reconcile: the rule's log takes effect only if it fires.
        for i in 0..cycle_log.len() {
            let w = design.regs[i].width;
            let (old, new) = (cycle_log[i], rule_log[i]);
            cycle_log[i] = WireLog {
                r1: nl.mux(1, fire, new.r1, old.r1),
                w0: nl.mux(1, fire, new.w0, old.w0),
                w1: nl.mux(1, fire, new.w1, old.w1),
                d0: nl.mux(w, fire, new.d0, old.d0),
                d1: nl.mux(w, fire, new.d1, old.d1),
            };
        }
        fires.push(fire);
        fire_names.push(rule.name.clone());
    }

    // Register update: next = w1 ? d1 : w0 ? d0 : hold.
    for (i, &entry) in cycle_log.iter().enumerate() {
        let w = design.regs[i].width;
        let q = nl.reg_q(i as u32);
        let on_w0 = nl.mux(w, entry.w0, entry.d0, q);
        let next = nl.mux(w, entry.w1, entry.d1, on_w0);
        nl.set_next(i as u32, next);
    }

    // Dead-node elimination (as a real RTL toolchain would do), keeping the
    // fire wires alive for telemetry.
    let remap = nl.prune(&fires);
    let fires = fires
        .into_iter()
        .map(|f| remap[f.0 as usize].expect("fire wires are roots"))
        .collect();

    Ok(RtlModel {
        name: design.name.clone(),
        netlist: nl,
        fires,
        fire_names,
        sched_rules: design.schedule.clone(),
        scheme,
    })
}
