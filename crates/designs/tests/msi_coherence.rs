//! MSI protocol tests: coherence invariants under random traffic, data
//! monotonicity (no stale reads going back in time), cross-backend
//! agreement, and the case-study-1 deadlock reproduction.

use cuttlesim::Sim;
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika::interp::Interp;
use koika::testgen::SplitMix64;
use koika::tir::{RegId, TDesign};
use koika_designs::msi::{self, mshr, parent, state, MSI_WORDS};
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};

/// Traffic generator + coherence checker for both cores.
///
/// Core 0 stores to addresses `0..8`, core 1 to `8..16`; both load from
/// `0..16`. Store values are strictly increasing sequence numbers per
/// address, so a correct protocol can never let an observer's view of an
/// address go backwards.
struct Traffic {
    rng: SplitMix64,
    regs: [CoreRegs; 2],
    /// Per core: last value observed per address (monotonicity check).
    seen: [[u64; 16]; 2],
    /// Per address: last value stored (by its single writer).
    written: [u64; 16],
    /// Outstanding request per core: (addr, store, value).
    pending: [Option<(u64, bool, u64)>; 2],
    /// Completed operations per core.
    pub completed: [u64; 2],
    next_value: u64,
}

#[derive(Clone, Copy)]
struct CoreRegs {
    req_valid: RegId,
    req_addr: RegId,
    req_wdata: RegId,
    req_store: RegId,
    resp_valid: RegId,
    resp_data: RegId,
}

impl Traffic {
    fn new(td: &TDesign, seed: u64) -> Traffic {
        let core = |i: usize| CoreRegs {
            req_valid: td.reg_id(&format!("c{i}_cpu_req_valid")),
            req_addr: td.reg_id(&format!("c{i}_cpu_req_addr")),
            req_wdata: td.reg_id(&format!("c{i}_cpu_req_wdata")),
            req_store: td.reg_id(&format!("c{i}_cpu_req_store")),
            resp_valid: td.reg_id(&format!("c{i}_cpu_resp_valid")),
            resp_data: td.reg_id(&format!("c{i}_cpu_resp_data")),
        };
        Traffic {
            rng: SplitMix64::new(seed),
            regs: [core(0), core(1)],
            seen: [[0; 16]; 2],
            written: [0; 16],
            pending: [None, None],
            completed: [0, 0],
            next_value: 1,
        }
    }
}

impl Device for Traffic {
    fn tick(&mut self, _cycle: u64, regs: &mut dyn RegAccess) {
        for i in 0..2 {
            let r = self.regs[i];
            // Collect a response.
            if regs.get64(r.resp_valid) == 1 {
                let data = regs.get64(r.resp_data);
                regs.set64(r.resp_valid, 0);
                let (addr, store, value) =
                    self.pending[i].take().expect("response without a request");
                if store {
                    self.written[addr as usize] = value;
                    self.seen[i][addr as usize] = value;
                    assert_eq!(data, value, "store response echoes the stored value");
                } else {
                    assert!(
                        data >= self.seen[i][addr as usize],
                        "core {i} read addr {addr}: value {data} older than previously \
                         seen {} — coherence violation",
                        self.seen[i][addr as usize]
                    );
                    assert!(
                        data <= self.written[addr as usize],
                        "core {i} read addr {addr}: value {data} from the future \
                         (last written {})",
                        self.written[addr as usize]
                    );
                    self.seen[i][addr as usize] = data;
                }
                self.completed[i] += 1;
            }
            // Issue a new request.
            if self.pending[i].is_none() && regs.get64(r.req_valid) == 0 {
                let addr = self.rng.below(16);
                let to_own_region = (i == 0 && addr < 8) || (i == 1 && addr >= 8);
                let store = to_own_region && self.rng.chance(1, 2);
                let value = if store {
                    let v = self.next_value;
                    self.next_value += 1;
                    v
                } else {
                    0
                };
                regs.set64(r.req_valid, 1);
                regs.set64(r.req_addr, addr);
                regs.set64(r.req_store, store as u64);
                regs.set64(r.req_wdata, value);
                self.pending[i] = Some((addr, store, value));
            }
        }
    }
}

fn check_safety(sim: &mut dyn SimBackend, td: &TDesign) {
    for a in 0..MSI_WORDS {
        let s0 = sim.as_reg_access().get64(td.reg_elem("c0_cstate", a));
        let s1 = sim.as_reg_access().get64(td.reg_elem("c1_cstate", a));
        assert!(
            !(s0 == state::M && s1 == state::M),
            "address {a}: both caches Modified — single-writer invariant violated"
        );
    }
}

#[test]
fn healthy_msi_makes_progress_and_stays_coherent() {
    let td = check(&msi::msi_system()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let mut traffic = Traffic::new(&td, 0xfeed);
    for cycle in 0..20_000u64 {
        traffic.tick(cycle, sim.as_reg_access());
        sim.cycle();
        if cycle % 64 == 0 {
            check_safety(&mut sim, &td);
        }
    }
    assert!(
        traffic.completed[0] > 500 && traffic.completed[1] > 500,
        "system should complete plenty of operations: {:?}",
        traffic.completed
    );
}

#[test]
fn msi_backends_agree_cycle_by_cycle() {
    let td = check(&msi::msi_system()).unwrap();
    let mut interp = Interp::new(&td);
    let mut t_interp = Traffic::new(&td, 7);
    let mut vm = Sim::compile(&td).unwrap();
    let mut t_vm = Traffic::new(&td, 7);
    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Dynamic).unwrap());
    let mut t_rtl = Traffic::new(&td, 7);

    for cycle in 0..1500u64 {
        t_interp.tick(cycle, interp.as_reg_access());
        interp.cycle();
        t_vm.tick(cycle, vm.as_reg_access());
        vm.cycle();
        t_rtl.tick(cycle, rtl.as_reg_access());
        rtl.cycle();
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            assert_eq!(
                vm.get64(reg),
                interp.get64(reg),
                "cycle {cycle}: {} diverged (VM vs interp)",
                td.regs[r].name
            );
            assert_eq!(
                rtl.get64(reg),
                interp.get64(reg),
                "cycle {cycle}: {} diverged (RTL vs interp)",
                td.regs[r].name
            );
        }
    }
}

/// Case study 1: the buggy parent deadlocks, and the observable state is
/// exactly what the paper's programmer sees in gdb — one cache stuck in
/// `WaitFillResp`, the parent stuck in `ConfirmDowngrades`.
#[test]
fn buggy_msi_deadlocks_in_the_papers_configuration() {
    let td = check(&msi::msi_system_buggy()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let mut traffic = Traffic::new(&td, 0xfeed);

    let mut last_completed = [0u64; 2];
    let mut stuck_for = 0u64;
    let mut deadlock_cycle = None;
    for cycle in 0..20_000u64 {
        traffic.tick(cycle, sim.as_reg_access());
        sim.cycle();
        if traffic.completed == last_completed {
            stuck_for += 1;
            if stuck_for > 2000 {
                deadlock_cycle = Some(cycle);
                break;
            }
        } else {
            stuck_for = 0;
            last_completed = traffic.completed;
        }
    }
    let deadlock_cycle = deadlock_cycle.expect("the buggy protocol should deadlock");

    // The paper's observation: a core is wedged waiting for its fill
    // response while the parent waits for downgrade confirmation.
    let p_state = sim.get64(td.reg_id("p_state"));
    assert_eq!(
        p_state,
        parent::CONFIRM_DOWNGRADES,
        "parent should be stuck in ConfirmDowngrades (deadlock at cycle {deadlock_cycle})"
    );
    let requester = sim.get64(td.reg_id("p_req_core"));
    let mshr_state = sim.get64(td.reg_id(&format!("c{requester}_mshr_state")));
    assert_eq!(
        mshr_state,
        mshr::WAIT_FILL_RESP,
        "the requesting core should be stuck in WaitFillResp"
    );
}

#[test]
fn directory_tracks_cache_states_at_quiescence() {
    let td = check(&msi::msi_system()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let mut traffic = Traffic::new(&td, 42);
    for cycle in 0..5_000u64 {
        traffic.tick(cycle, sim.as_reg_access());
        sim.cycle();
    }
    // Stop issuing; drain in-flight transactions.
    for cycle in 5_000..5_200u64 {
        // Keep collecting responses but issue nothing new.
        for i in 0..2 {
            let r = traffic.regs[i];
            let _ = r;
        }
        let _ = cycle;
        sim.cycle();
    }
    // At quiescence the directory matches each cache exactly.
    for a in 0..MSI_WORDS {
        for i in 0..2 {
            let dir = sim.get64(td.reg_elem(&format!("p_dir{i}"), a));
            let cst = sim.get64(td.reg_elem(&format!("c{i}_cstate"), a));
            assert_eq!(
                dir, cst,
                "address {a}: directory for core {i} ({dir}) disagrees with the cache ({cst})"
            );
        }
    }
}

/// Directed ownership ping-pong: both cores write the same hot address in
/// strict alternation. Ownership must transfer back and forth through the
/// full downgrade/confirm path every time, each core always reading the
/// other's latest value.
#[test]
fn ownership_ping_pong_on_a_hot_address() {
    let td = check(&msi::msi_system()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();

    let port = |i: usize, n: &str| td.reg_id(&format!("c{i}_cpu_{n}"));
    for (round, value) in (0..40).zip(1u64..) {
        let core = round % 2;
        // Issue a store of `value` to address 3 from `core`.
        sim.set64(port(core, "req_valid"), 1);
        sim.set64(port(core, "req_addr"), 3);
        sim.set64(port(core, "req_store"), 1);
        sim.set64(port(core, "req_wdata"), value);
        let mut done = false;
        for _ in 0..200 {
            sim.cycle();
            if sim.get64(port(core, "resp_valid")) == 1 {
                sim.set64(port(core, "resp_valid"), 0);
                done = true;
                break;
            }
        }
        assert!(done, "round {round}: store by core {core} never completed");
        // The other core reads it back.
        let other = 1 - core;
        sim.set64(port(other, "req_valid"), 1);
        sim.set64(port(other, "req_addr"), 3);
        sim.set64(port(other, "req_store"), 0);
        let mut got = None;
        for _ in 0..200 {
            sim.cycle();
            if sim.get64(port(other, "resp_valid")) == 1 {
                got = Some(sim.get64(port(other, "resp_data")));
                sim.set64(port(other, "resp_valid"), 0);
                break;
            }
        }
        assert_eq!(
            got,
            Some(value),
            "round {round}: core {other} read a stale value"
        );
        check_safety(&mut sim, &td);
    }
}
