//! Integration tests for the pipelined RV32 cores: golden-model lockstep,
//! cross-backend agreement, branch-predictor effectiveness, and the
//! case-study-3 x0-scoreboard bug.

use cuttlesim::{CompileOptions, OptLevel, Sim};
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika::interp::Interp;
use koika::tir::RegId;
use koika_designs::harness::{
    assert_matches_golden, golden_run, run_until_retired, MEM_WORDS,
};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};

fn mem_for(td: &koika::tir::TDesign, prefix: &str, program: &[u32]) -> MagicMemory {
    MagicMemory::new(
        td,
        &[&format!("{prefix}imem"), &format!("{prefix}dmem")],
        program,
        MEM_WORDS,
    )
}

#[test]
fn cuttlesim_runs_primes_and_matches_golden() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(60);
    let golden = golden_run(&program, 2_000_000);

    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = mem_for(&td, "", &program);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 5_000_000);
    assert!(run.completed, "core did not finish: {run:?}");
    assert_matches_golden(&mut sim, &mem, &td, "", 32, &golden);
    assert_eq!(
        mem.word(programs::RESULT_ADDR),
        programs::primes_expected(60)
    );
}

#[test]
fn rv32e_runs_primes_and_matches_golden() {
    let td = check(&rv32::rv32e()).unwrap();
    let program = programs::primes(40);
    let golden = golden_run(&program, 2_000_000);

    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = mem_for(&td, "", &program);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 5_000_000);
    assert!(run.completed, "core did not finish: {run:?}");
    for i in 0..16 {
        let v = sim.get64(td.reg_elem("rf", i)) as u32;
        assert_eq!(v, golden.regs[i as usize], "x{i}");
    }
    assert_eq!(
        mem.word(programs::RESULT_ADDR),
        programs::primes_expected(40)
    );
}

#[test]
fn bp_core_runs_primes_and_matches_golden() {
    let td = check(&rv32::rv32i_bp()).unwrap();
    let program = programs::primes(60);
    let golden = golden_run(&program, 2_000_000);

    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = mem_for(&td, "", &program);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 5_000_000);
    assert!(run.completed, "core did not finish: {run:?}");
    assert_matches_golden(&mut sim, &mem, &td, "", 32, &golden);
}

/// The heavyweight cross-check: the interpreter, every Cuttlesim level, and
/// the dynamic RTL scheme agree on *every register of the core, every
/// cycle*, with identical memory devices.
#[test]
fn all_backends_agree_on_the_core_cycle_by_cycle() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(10);

    let mut interp = Interp::new(&td);
    let mut interp_mem = mem_for(&td, "", &program);

    let mut sims: Vec<(String, Sim, MagicMemory)> = OptLevel::ALL
        .iter()
        .map(|&level| {
            let sim = Sim::compile_with(
                &td,
                &CompileOptions {
                    level,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
            (level.to_string(), sim, mem_for(&td, "", &program))
        })
        .collect();

    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Dynamic).unwrap());
    let mut rtl_mem = mem_for(&td, "", &program);

    for cycle in 0..3000u64 {
        interp_mem.tick(cycle, interp.as_reg_access());
        interp.cycle();
        for (name, sim, mem) in &mut sims {
            mem.tick(cycle, sim.as_reg_access());
            sim.cycle();
            for r in 0..td.num_regs() {
                let reg = RegId(r as u32);
                assert_eq!(
                    sim.get64(reg),
                    interp.get64(reg),
                    "cycle {cycle}, register {} diverged at {name}",
                    td.regs[r].name
                );
            }
        }
        rtl_mem.tick(cycle, rtl.as_reg_access());
        rtl.cycle();
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            assert_eq!(
                rtl.get64(reg),
                interp.get64(reg),
                "cycle {cycle}, register {} diverged at RTL",
                td.regs[r].name
            );
        }
    }
}

#[test]
fn x0_bug_halves_nop_throughput() {
    // Case study 3: 100 NOPs should take ~1 cycle each on the fixed core
    // and ~2 each on the buggy one ("retiring 100 NOP instructions took 203
    // cycles").
    let program = programs::nops(100);

    let run_nops = |design: koika::design::Design| -> u64 {
        let td = check(&design).unwrap();
        let mut sim = Sim::compile(&td).unwrap();
        let mut mem = mem_for(&td, "", &program);
        let run = run_until_retired(&mut sim, &mut mem, &td, "", 100, 10_000);
        assert!(run.completed);
        run.cycles
    };

    let good = run_nops(rv32::rv32i());
    let bad = run_nops(rv32::rv32i_x0bug());
    assert!(
        good < 115,
        "fixed core should retire ~1 NOP/cycle, took {good} cycles"
    );
    assert!(
        bad > 190,
        "buggy core should stall every other cycle, took {bad} cycles"
    );
}

#[test]
fn branch_predictor_reduces_cycles_on_branchy_code() {
    let program = programs::branchy(300);
    let golden = golden_run(&program, 1_000_000);

    let run_core = |design: koika::design::Design| -> (u64, u32) {
        let td = check(&design).unwrap();
        let mut sim = Sim::compile(&td).unwrap();
        let mut mem = mem_for(&td, "", &program);
        let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 2_000_000);
        assert!(run.completed);
        (run.cycles, mem.word(programs::RESULT_ADDR))
    };

    let (base_cycles, base_result) = run_core(rv32::rv32i());
    let (bp_cycles, bp_result) = run_core(rv32::rv32i_bp());
    assert_eq!(base_result, golden.regs[10]);
    assert_eq!(bp_result, golden.regs[10]);
    assert!(
        bp_cycles < base_cycles,
        "branch prediction should help: baseline {base_cycles}, bp {bp_cycles}"
    );
}

#[test]
fn dual_core_runs_two_programs() {
    let td = check(&rv32::rv32i_mc()).unwrap();
    let prog0 = programs::primes_at(40, 0x1800);
    let prog1 = programs::primes_at(30, 0x1900);
    let golden0 = golden_run(&prog0, 2_000_000);

    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = MagicMemory::new(
        &td,
        &["c0_imem", "c0_dmem", "c1_imem", "c1_dmem"],
        &prog0,
        MEM_WORDS,
    );
    mem.load(rv32::MC_CORE1_PC, &prog1);

    // Run until both cores have retired their programs.
    let c0_retired = td.reg_id("c0_retired");
    let c1_retired = td.reg_id("c1_retired");
    let golden1 = {
        // Golden model for core 1: same program image, shifted entry point.
        let mut words = vec![0u32; MEM_WORDS];
        words[(rv32::MC_CORE1_PC >> 2) as usize..][..prog1.len()].copy_from_slice(&prog1);
        let mut g = koika_riscv::Golden::new(&words, MEM_WORDS);
        g.pc = rv32::MC_CORE1_PC;
        assert_eq!(g.run(2_000_000), koika_riscv::golden::Exit::Halted);
        g
    };

    let mut cycles = 0u64;
    while (sim.get64(c0_retired) < golden0.retired || sim.get64(c1_retired) < golden1.retired)
        && cycles < 5_000_000
    {
        mem.tick(cycles, sim.as_reg_access());
        sim.cycle();
        cycles += 1;
    }
    assert!(cycles < 5_000_000, "dual-core run did not finish");
    assert_eq!(mem.word(0x1800), programs::primes_expected(40));
    assert_eq!(mem.word(0x1900), programs::primes_expected(30));
}

#[test]
fn scheduler_randomization_on_the_core() {
    // Case study 2: the core computes the right answer whatever order the
    // rules (appear to) execute in each cycle.
    use koika::analysis::ScheduleAssumption;
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(20);
    let golden = golden_run(&program, 1_000_000);

    let mut sim = Sim::compile_with(
        &td,
        &CompileOptions {
            level: OptLevel::max(),
            assumption: ScheduleAssumption::AnyOrder,
            coverage: false,
            optimize: true,
        },
    )
    .unwrap();
    let mut mem = mem_for(&td, "", &program);
    let retired = td.reg_id("retired");

    let mut rng = koika::testgen::SplitMix64::new(0xC0FFEE);
    let nrules = td.rules.len();
    let mut cycles = 0u64;
    while sim.get64(retired) < golden.retired && cycles < 3_000_000 {
        mem.tick(cycles, sim.as_reg_access());
        // A random permutation of the rules each cycle.
        let mut order: Vec<usize> = (0..nrules).collect();
        for i in (1..nrules).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        sim.cycle_with_order(&order);
        cycles += 1;
    }
    assert!(cycles < 3_000_000, "randomized-schedule run did not finish");
    assert_eq!(mem.word(programs::RESULT_ADDR), programs::primes_expected(20));
    for i in 0..32 {
        assert_eq!(
            sim.get64(td.reg_elem("rf", i)) as u32,
            golden.regs[i as usize],
            "x{i}"
        );
    }
}

#[test]
fn bypass_core_removes_dependent_arithmetic_bubbles() {
    // The paper's case study 4 closes by pointing at missing bypass paths:
    // back-to-back dependent arithmetic stalls on the scoreboard. The
    // `bypass` variant forwards execute results into decode; dependent
    // chains should run substantially faster, and architectural state must
    // still match the golden model.
    let program = programs::dependent_chain(200);
    let golden = golden_run(&program, 1_000_000);

    let run_core = |design: koika::design::Design| -> u64 {
        let td = check(&design).unwrap();
        let mut sim = Sim::compile(&td).unwrap();
        let mut mem = mem_for(&td, "", &program);
        let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 2_000_000);
        assert!(run.completed);
        assert_matches_golden(&mut sim, &mem, &td, "", 32, &golden);
        run.cycles
    };

    let base = run_core(rv32::rv32i());
    let fwd = run_core(rv32::rv32i_bypass());
    assert!(
        fwd * 10 <= base * 8,
        "forwarding should cut dependent-chain cycles by >20%: {base} -> {fwd}"
    );
}

#[test]
fn bypass_core_matches_golden_on_primes_and_all_backends() {
    let td = check(&rv32::rv32i_bypass()).unwrap();
    let program = programs::primes(40);
    let golden = golden_run(&program, 2_000_000);

    // Golden-model check on the Cuttlesim backend.
    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = mem_for(&td, "", &program);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 5_000_000);
    assert!(run.completed, "bypass core did not finish: {run:?}");
    assert_matches_golden(&mut sim, &mem, &td, "", 32, &golden);

    // Cycle-exact agreement between interpreter, VM, and RTL.
    let mut interp = Interp::new(&td);
    let mut interp_mem = mem_for(&td, "", &program);
    let mut vm = Sim::compile(&td).unwrap();
    let mut vm_mem = mem_for(&td, "", &program);
    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Dynamic).unwrap());
    let mut rtl_mem = mem_for(&td, "", &program);
    for cycle in 0..2000u64 {
        interp_mem.tick(cycle, interp.as_reg_access());
        interp.cycle();
        vm_mem.tick(cycle, vm.as_reg_access());
        vm.cycle();
        rtl_mem.tick(cycle, rtl.as_reg_access());
        rtl.cycle();
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            assert_eq!(vm.get64(reg), interp.get64(reg), "cycle {cycle} {} (vm)", td.regs[r].name);
            assert_eq!(rtl.get64(reg), interp.get64(reg), "cycle {cycle} {} (rtl)", td.regs[r].name);
        }
    }
}

#[test]
fn combined_bp_and_bypass_beats_both_single_improvements() {
    // The design-exploration endpoint: branch prediction and bypassing
    // attack independent bottlenecks, so together they dominate either one
    // alone on a workload with both branches and dependent arithmetic.
    let program = programs::branchy(400);
    let golden = golden_run(&program, 1_000_000);

    let run_core = |design: koika::design::Design| -> u64 {
        let td = check(&design).unwrap();
        let mut sim = Sim::compile(&td).unwrap();
        let mut mem = mem_for(&td, "", &program);
        let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 2_000_000);
        assert!(run.completed);
        assert_matches_golden(&mut sim, &mem, &td, "", 32, &golden);
        run.cycles
    };

    let base = run_core(rv32::rv32i());
    let bp = run_core(rv32::rv32i_bp());
    let byp = run_core(rv32::rv32i_bypass());
    let both = run_core(rv32::rv32i_bp_bypass());
    assert!(both < bp, "combined ({both}) should beat bp alone ({bp})");
    assert!(both < byp, "combined ({both}) should beat bypass alone ({byp})");
    assert!(both < base, "combined ({both}) should beat baseline ({base})");
}
