//! Randomized instruction-mix torture tests: generated programs covering
//! the whole supported RV32I surface (every ALU op, every branch, every
//! load/store width and alignment) run in lockstep against the golden ISA
//! model on the Cuttlesim core. The structured benchmarks never exercise
//! `lb`/`sh`/`bgeu`/... corners; these programs do.

use cuttlesim::Sim;
use koika::check::check;
use koika::testgen::SplitMix64;
use koika_designs::harness::{golden_run, run_until_retired, MEM_WORDS};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::isa::{encode, Instr};

/// Constructor shape shared by the store/load instruction pairs below.
type MemInstrCtor = fn(u8, u8, i32) -> Instr;

/// Scratch memory region used by generated loads/stores (word 256 on).
const SCRATCH: u32 = 0x400;

/// Generates a random but well-behaved program: straight-line random ALU
/// ops and memory accesses, sprinkled with short forward branches, ending
/// in a halt. Registers x1..x15 participate; x10 accumulates a checksum so
/// every instruction's result feeds the final state.
fn torture_program(seed: u64, len: usize) -> Vec<u32> {
    use Instr::*;
    let mut rng = SplitMix64::new(seed);
    let mut prog: Vec<Instr> = Vec::new();
    // Seed the registers with distinct values.
    for r in 1..=15u8 {
        prog.push(Addi {
            rd: r,
            rs1: 0,
            imm: (rng.below(4096) as i32) - 2048,
        });
    }
    // Set up a scratch base pointer in x15.
    prog.push(Lui {
        rd: 15,
        imm: SCRATCH as i32,
    });

    let reg = |rng: &mut SplitMix64| (1 + rng.below(14)) as u8; // x1..x14
    while prog.len() < len {
        let choice = rng.below(20);
        let (rd, rs1, rs2) = (reg(&mut rng), reg(&mut rng), reg(&mut rng));
        let imm = (rng.below(4096) as i32) - 2048;
        let shamt = rng.below(32) as u8;
        // Word-aligned-safe scratch offset for the chosen width.
        let instr = match choice {
            0 => Add { rd, rs1, rs2 },
            1 => Sub { rd, rs1, rs2 },
            2 => Sll { rd, rs1, rs2 },
            3 => Slt { rd, rs1, rs2 },
            4 => Sltu { rd, rs1, rs2 },
            5 => Xor { rd, rs1, rs2 },
            6 => Srl { rd, rs1, rs2 },
            7 => Sra { rd, rs1, rs2 },
            8 => Or { rd, rs1, rs2 },
            9 => And { rd, rs1, rs2 },
            10 => Addi { rd, rs1, imm },
            11 => Slti { rd, rs1, imm },
            12 => Xori { rd, rs1, imm },
            13 => Slli { rd, rs1, shamt },
            14 => Srai { rd, rs1, shamt },
            15 | 16 => {
                // Store then load back at a random alignment in scratch.
                let width = rng.below(3);
                let (off, store, load): (i32, MemInstrCtor, MemInstrCtor) =
                    match width {
                        0 => (
                            rng.below(64) as i32,
                            |rs1, rs2, imm| Sb { rs1, rs2, imm },
                            |rd, rs1, imm| Lb { rd, rs1, imm },
                        ),
                        1 => (
                            (rng.below(32) * 2) as i32,
                            |rs1, rs2, imm| Sh { rs1, rs2, imm },
                            |rd, rs1, imm| Lhu { rd, rs1, imm },
                        ),
                        _ => (
                            (rng.below(16) * 4) as i32,
                            |rs1, rs2, imm| Sw { rs1, rs2, imm },
                            |rd, rs1, imm| Lw { rd, rs1, imm },
                        ),
                    };
                prog.push(store(15, rs2, off));
                load(rd, 15, off)
            }
            17 => Lui { rd, imm: imm << 12 },
            18 => Auipc { rd, imm: imm << 12 },
            _ => {
                // A short forward branch over one checksum update: both
                // outcomes leave valid code.
                let cond = rng.below(6);
                let b = match cond {
                    0 => Beq { rs1, rs2, imm: 8 },
                    1 => Bne { rs1, rs2, imm: 8 },
                    2 => Blt { rs1, rs2, imm: 8 },
                    3 => Bge { rs1, rs2, imm: 8 },
                    4 => Bltu { rs1, rs2, imm: 8 },
                    _ => Bgeu { rs1, rs2, imm: 8 },
                };
                prog.push(b);
                Xori {
                    rd: 10,
                    rs1: 10,
                    imm: 0x2a5,
                }
            }
        };
        prog.push(instr);
        // Fold the destination into the checksum now and then.
        if rng.chance(1, 3) {
            prog.push(Add {
                rd: 10,
                rs1: 10,
                rs2: rd,
            });
        }
    }
    prog.push(Jal { rd: 0, imm: 0 }); // halt
    prog.iter().copied().map(encode).collect()
}

fn run_torture(seed: u64, design: koika::design::Design) {
    let program = torture_program(seed, 300);
    let golden = golden_run(&program, 1_000_000);
    let td = check(&design).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 2_000_000);
    assert!(run.completed, "seed {seed}: core did not finish: {run:?}");
    koika_designs::harness::assert_matches_golden(&mut sim, &mem, &td, "", 32, &golden);
}

#[test]
fn torture_baseline_core() {
    for seed in 0..12 {
        run_torture(seed, rv32::rv32i());
    }
}

#[test]
fn torture_bp_core() {
    for seed in 100..106 {
        run_torture(seed, rv32::rv32i_bp());
    }
}

#[test]
fn torture_bypass_core() {
    for seed in 200..206 {
        run_torture(seed, rv32::rv32i_bypass());
    }
}

#[test]
fn torture_x0bug_core_is_still_functionally_correct() {
    // The case-study-3 bug is a performance bug, not a correctness bug.
    for seed in 300..304 {
        run_torture(seed, rv32::rv32i_x0bug());
    }
}
