//! Hygiene checks over every shipped design: they typecheck, contain no
//! Goldbergian contraptions (so all backends agree on them — the compiler
//! would warn otherwise, like the real Cuttlesim), fit the 64-bit fast
//! path, and compile under every backend.

use koika::analysis::{analyze, ScheduleAssumption};
use koika::check::check;
use koika::design::Design;
use koika_designs::{msi, rv32, small};

fn all_designs() -> Vec<Design> {
    vec![
        small::collatz(),
        small::fir(),
        small::fft(),
        rv32::rv32i(),
        rv32::rv32e(),
        rv32::rv32i_bp(),
        rv32::rv32i_x0bug(),
        rv32::rv32i_mc(),
        msi::msi_system(),
        msi::msi_system_buggy(),
    ]
}

#[test]
fn all_designs_typecheck_and_compile_everywhere() {
    for design in all_designs() {
        let td = check(&design).unwrap_or_else(|e| panic!("{}: {e}", design.name));
        assert!(td.fits_u64(), "{}: register wider than 64 bits", td.name);
        cuttlesim::Sim::compile(&td)
            .unwrap_or_else(|e| panic!("{}: cuttlesim: {e}", td.name));
        koika_rtl::compile(&td, koika_rtl::Scheme::Dynamic)
            .unwrap_or_else(|e| panic!("{}: rtl dynamic: {e}", td.name));
        koika_rtl::compile(&td, koika_rtl::Scheme::Static)
            .unwrap_or_else(|e| panic!("{}: rtl static: {e}", td.name));
    }
}

#[test]
fn no_design_contains_goldbergian_contraptions() {
    for design in all_designs() {
        let td = check(&design).unwrap();
        let analysis = analyze(&td, ScheduleAssumption::Declared);
        assert!(
            analysis.warnings.is_empty(),
            "{}: {:?}",
            td.name,
            analysis.warnings
        );
    }
}

#[test]
fn analysis_finds_safe_registers_in_real_designs() {
    // The design-specific pass should find a healthy fraction of safe
    // registers in the cores (the paper's §3.3 relies on this).
    let td = check(&rv32::rv32i()).unwrap();
    let analysis = analyze(&td, ScheduleAssumption::Declared);
    let safe = analysis.safe_sym.iter().filter(|s| **s).count();
    assert!(
        safe * 2 >= td.syms.len(),
        "expected most core registers to be provably safe, got {safe}/{}",
        td.syms.len()
    );
}

#[test]
fn generated_cpp_models_mention_every_rule() {
    for design in all_designs() {
        let td = check(&design).unwrap();
        let cpp = cuttlesim::codegen_cpp::emit(&td);
        for rule in &td.rules {
            assert!(
                cpp.contains(&format!("DEF_RULE({})", rule.name)),
                "{}: rule {} missing from the generated model",
                td.name,
                rule.name
            );
        }
    }
}

#[test]
fn generated_verilog_mentions_every_register() {
    for design in all_designs() {
        let td = check(&design).unwrap();
        let model = koika_rtl::compile(&td, koika_rtl::Scheme::Dynamic).unwrap();
        let v = koika_rtl::verilog::emit(&model);
        assert!(v.contains("module"));
        assert!(v.contains("endmodule"));
        assert_eq!(
            v.matches("  reg [").count(),
            td.num_regs(),
            "{}: register count mismatch in Verilog",
            td.name
        );
    }
}
