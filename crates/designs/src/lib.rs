//! The benchmark designs of the Cuttlesim paper (Table 1), written as Kôika
//! rule-based designs, plus the external devices and harnesses they run on:
//!
//! * [`small`] — `collatz` (the §2.1 two-state machine), the combinational
//!   `fir` filter and `fft` butterfly network;
//! * [`rv32`] — the pipelined RV32I/E cores: baseline, branch-predicted
//!   (`bp`), dual-core (`mc`), and the case-study-3 `x0` scoreboard-bug
//!   variant;
//! * [`msi`] — the 2-core MSI cache-coherence system of case study 1
//!   (with its deadlock-bug variant);
//! * [`memdev`] — the 1-cycle "magic memory" device;
//! * [`harness`] — run-until-retired helpers and golden-model comparison.
//!
//! Every design here runs unmodified on all backends: the reference
//! interpreter, every Cuttlesim optimization level, and both RTL schemes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fifo;
pub mod harness;
pub mod memdev;
pub mod msi;
pub mod rv32;
pub mod small;

pub use memdev::MagicMemory;
pub use small::{collatz, fft, fir};
