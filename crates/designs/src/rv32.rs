//! Pipelined RV32I/E processor cores, written as Kôika rule-based designs —
//! the paper's main benchmark family (Table 1: `rv32i`, `rv32e`,
//! `rv32i-bp`, `rv32i-mc`).
//!
//! The core is a classic 4-stage in-order pipeline expressed as four rules —
//! `writeback`, `execute`, `decode`, `fetch` — scheduled in that (reverse)
//! order so that one-entry FIFOs drain before they fill, giving full
//! pipelining with port-1 forwarding:
//!
//! * **fetch** issues an instruction-memory request, predicts the next PC
//!   (`pc + 4`, or BTB + BHT in the `bp` variant), and enqueues to `f2d`;
//! * **decode** pairs the memory response with the `f2d` entry, drops
//!   wrong-epoch (squashed) instructions, stalls on scoreboard hazards,
//!   reads the register file, and enqueues to `d2e`;
//! * **execute** drops stale-epoch instructions as *poisoned*, computes the
//!   ALU result and the real next PC, issues data-memory requests, redirects
//!   the front end on mispredictions (flipping the epoch), and enqueues to
//!   `e2w`;
//! * **writeback** waits for load responses, writes the register file, and
//!   releases scoreboard entries.
//!
//! Stalls are expressed as rule aborts — exactly the "early exit" behavior
//! Cuttlesim compiles into cheap sequential returns and RTL computes (and
//! discards) every cycle.
//!
//! The `x0_bug` configuration reproduces the paper's case study 3: the
//! scoreboard fails to special-case the hardwired-zero register, so NOPs
//! (`addi x0, x0, 0`) create phantom dependencies and the pipeline runs at
//! half speed.

use crate::memdev::MemPort;
use koika::ast::*;
use koika::design::{Design, DesignBuilder};

/// Core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreCfg {
    /// Number of architectural registers: 32 (RV32I) or 16 (RV32E).
    pub nregs: u32,
    /// Enable the BTB + BHT branch predictor (the paper's `bp` variant).
    pub bp: bool,
    /// Omit the x0 scoreboard special case (case study 3's bug).
    pub x0_bug: bool,
    /// Add execute-to-decode forwarding for ALU results, removing the
    /// back-to-back dependent-arithmetic bubbles the paper's case study 4
    /// identifies as the next bottleneck after branch prediction.
    pub bypass: bool,
}

impl CoreCfg {
    /// The baseline RV32I configuration (PC + 4 predictor).
    pub fn rv32i() -> CoreCfg {
        CoreCfg {
            nregs: 32,
            bp: false,
            x0_bug: false,
            bypass: false,
        }
    }

    /// The embedded RV32E configuration (16 registers).
    pub fn rv32e() -> CoreCfg {
        CoreCfg {
            nregs: 16,
            ..CoreCfg::rv32i()
        }
    }
}

// RV32 opcodes.
const OP_LOAD: u64 = 0x03;
const OP_OPIMM: u64 = 0x13;
const OP_AUIPC: u64 = 0x17;
const OP_STORE: u64 = 0x23;
const OP_OP: u64 = 0x33;
const OP_LUI: u64 = 0x37;
const OP_BRANCH: u64 = 0x63;
const OP_JALR: u64 = 0x67;
const OP_JAL: u64 = 0x6f;

fn op_is(opcode: &str, v: u64) -> Expr {
    var(opcode).eq(k(7, v))
}

fn any(mut es: Vec<Expr>) -> Expr {
    let first = es.remove(0);
    es.into_iter().fold(first, |a, b| a.or(b))
}

/// Builds one core's registers and rules into `b`, with every name prefixed
/// by `p` (empty for single-core designs). Returns the schedule fragment
/// (rule names in execution order).
pub fn build_core(b: &mut DesignBuilder, p: &str, cfg: &CoreCfg, pc_init: u32) -> Vec<String> {
    let r = |name: &str| format!("{p}{name}");

    // Architectural state.
    b.reg(r("pc"), 32, pc_init as u128);
    b.reg(r("epoch"), 1, 0u64);
    b.array(r("rf"), 32, cfg.nregs, 0u64);
    b.array(r("sb"), 2, cfg.nregs, 0u64);
    b.reg(r("retired"), 32, 0u64);

    // Pipeline FIFOs (one entry each).
    b.reg(r("f2d_valid"), 1, 0u64);
    b.reg(r("f2d_pc"), 32, 0u64);
    b.reg(r("f2d_ppc"), 32, 0u64);
    b.reg(r("f2d_epoch"), 1, 0u64);

    b.reg(r("d2e_valid"), 1, 0u64);
    b.reg(r("d2e_pc"), 32, 0u64);
    b.reg(r("d2e_ppc"), 32, 0u64);
    b.reg(r("d2e_epoch"), 1, 0u64);
    b.reg(r("d2e_instr"), 32, 0u64);
    b.reg(r("d2e_rval1"), 32, 0u64);
    b.reg(r("d2e_rval2"), 32, 0u64);

    b.reg(r("e2w_valid"), 1, 0u64);
    b.reg(r("e2w_rd"), 5, 0u64);
    b.reg(r("e2w_writes"), 1, 0u64);
    b.reg(r("e2w_is_load"), 1, 0u64);
    b.reg(r("e2w_f3"), 3, 0u64);
    b.reg(r("e2w_alo"), 2, 0u64);
    b.reg(r("e2w_val"), 32, 0u64);
    b.reg(r("e2w_poison"), 1, 0u64);

    // Memory ports.
    MemPort::declare(b, &r("imem"));
    MemPort::declare(b, &r("dmem"));

    // Execute-to-decode forwarding wires.
    if cfg.bypass {
        b.reg(r("byp_valid"), 1, 0u64);
        b.reg(r("byp_rd"), 5, 0u64);
        b.reg(r("byp_val"), 32, 0u64);
    }

    // Branch-predictor state.
    if cfg.bp {
        b.array(r("btb_valid"), 1, 16, 0u64);
        b.array(r("btb_pc"), 32, 16, 0u64);
        b.array(r("btb_target"), 32, 16, 0u64);
        b.array(r("bht"), 2, 64, 1u64); // weakly not-taken
    }

    build_writeback(b, p, cfg);
    build_execute(b, p, cfg);
    build_decode(b, p, cfg);
    build_fetch(b, p, cfg);

    vec![r("writeback"), r("execute"), r("decode"), r("fetch")]
}

fn build_writeback(b: &mut DesignBuilder, p: &str, cfg: &CoreCfg) {
    let r = |name: &str| format!("{p}{name}");
    let mut body = vec![
        guard(rd0(r("e2w_valid")).eq(k(1, 1))),
        let_("poison", rd0(r("e2w_poison"))),
        let_("is_load", rd0(r("e2w_is_load"))),
        let_("writes", rd0(r("e2w_writes"))),
        let_("rd", rd0(r("e2w_rd"))),
        // Loads must wait for the memory response (poisoned entries never
        // carry is_load).
        named(
            "load_wait",
            vec![when(
                var("is_load")
                    .eq(k(1, 1))
                    .and(rd0(r("dmem_resp_valid")).eq(k(1, 0))),
                vec![abort()],
            )],
        ),
        wr0(r("e2w_valid"), k(1, 0)),
        // Load-data extraction (byte/halfword lanes + sign handling).
        let_("raw", rd0(r("dmem_resp_data"))),
        let_("alo", rd0(r("e2w_alo"))),
        let_("f3", rd0(r("e2w_f3"))),
        let_(
            "shifted",
            var("raw").shr(var("alo").concat(k(3, 0)).zext(32)),
        ),
        let_("b_s", var("shifted").slice(0, 8).sext(32)),
        let_("h_s", var("shifted").slice(0, 16).sext(32)),
        let_("b_u", var("shifted").slice(0, 8).zext(32)),
        let_("h_u", var("shifted").slice(0, 16).zext(32)),
        let_(
            "lval",
            select(
                var("f3").eq(k(3, 0)),
                var("b_s"),
                select(
                    var("f3").eq(k(3, 1)),
                    var("h_s"),
                    select(
                        var("f3").eq(k(3, 4)),
                        var("b_u"),
                        select(var("f3").eq(k(3, 5)), var("h_u"), var("raw")),
                    ),
                ),
            ),
        ),
        let_("aluval", rd0(r("e2w_val"))),
        let_(
            "value",
            select(var("is_load").eq(k(1, 1)), var("lval"), var("aluval")),
        ),
        when(
            var("is_load").eq(k(1, 1)),
            vec![wr0(r("dmem_resp_valid"), k(1, 0))],
        ),
        // Register-file write (x0 stays hardwired to zero).
        when(
            var("writes")
                .eq(k(1, 1))
                .and(var("poison").eq(k(1, 0)))
                .and(var("rd").ne(k(5, 0))),
            vec![wr0a(r("rf"), var("rd"), var("value"))],
        ),
    ];
    // Scoreboard release mirrors decode's claim condition exactly.
    let release_cond = if cfg.x0_bug {
        var("writes").eq(k(1, 1))
    } else {
        var("writes").eq(k(1, 1)).and(var("rd").ne(k(5, 0)))
    };
    body.push(named(
        "scoreboard_release",
        vec![when(
            release_cond,
            vec![wr0a(
                r("sb"),
                var("rd"),
                rd0a(r("sb"), var("rd")).sub(k(2, 1)),
            )],
        )],
    ));
    body.push(when(
        var("poison").eq(k(1, 0)),
        vec![wr0(r("retired"), rd0(r("retired")).add(k(32, 1)))],
    ));
    b.rule(r("writeback"), body);
}

fn build_decode(b: &mut DesignBuilder, p: &str, cfg: &CoreCfg) {
    let r = |name: &str| format!("{p}{name}");
    let mut good_path = vec![
        // Scoreboard hazard detection.
        let_("sb1", rd1a(r("sb"), var("rs1"))),
        let_("sb2", rd1a(r("sb"), var("rs2"))),
        let_("sbd", rd1a(r("sb"), var("rd"))),
    ];
    if cfg.bypass {
        // Forwarding: if the pending writer of a source register executed
        // this very cycle (its result sits on the bypass wires / in e2w),
        // take the value instead of stalling. The WAW check below is
        // unaffected — destinations cannot be forwarded.
        good_path.extend(vec![
            let_("byp_v", rd1(r("byp_valid"))),
            let_("byp_r", rd1(r("byp_rd"))),
            let_("byp_x", rd1(r("byp_val"))),
            let_(
                "fwd1",
                var("byp_v").and(var("byp_r").eq(var("rs1"))),
            ),
            let_(
                "fwd2",
                var("byp_v").and(var("byp_r").eq(var("rs2"))),
            ),
            let_(
                "stall",
                var("use_rs1")
                    .and(var("sb1").ne(k(2, 0)))
                    .and(var("fwd1").not())
                    .or(var("use_rs2")
                        .and(var("sb2").ne(k(2, 0)))
                        .and(var("fwd2").not()))
                    .or(var("writes_rd").and(var("sbd").ne(k(2, 0)))),
            ),
        ]);
    } else {
        good_path.push(let_(
            "stall",
            var("use_rs1")
                .and(var("sb1").ne(k(2, 0)))
                .or(var("use_rs2").and(var("sb2").ne(k(2, 0))))
                .or(var("writes_rd").and(var("sbd").ne(k(2, 0)))),
        ));
    }
    good_path.extend(vec![
        named(
            "scoreboard_stall",
            vec![when(var("stall").eq(k(1, 1)), vec![abort()])],
        ),
        // Need room in d2e.
        guard(rd1(r("d2e_valid")).eq(k(1, 0))),
        // Register-file read (port 1: sees this cycle's writeback).
        let_("rfv1", rd1a(r("rf"), var("rs1"))),
        let_("rfv2", rd1a(r("rf"), var("rs2"))),
    ]);
    if cfg.bypass {
        good_path.extend(vec![
            let_(
                "rval1",
                select(
                    var("fwd1").and(var("sb1").ne(k(2, 0))),
                    var("byp_x"),
                    var("rfv1"),
                ),
            ),
            let_(
                "rval2",
                select(
                    var("fwd2").and(var("sb2").ne(k(2, 0))),
                    var("byp_x"),
                    var("rfv2"),
                ),
            ),
        ]);
    } else {
        good_path.extend(vec![
            let_("rval1", var("rfv1")),
            let_("rval2", var("rfv2")),
        ]);
    }
    // Scoreboard claim — the x0 special case is the subject of case study 3.
    let claim_cond = if cfg.x0_bug {
        var("writes_rd").eq(k(1, 1))
    } else {
        var("writes_rd").eq(k(1, 1)).and(var("rd").ne(k(5, 0)))
    };
    good_path.push(named(
        "scoreboard_claim",
        vec![when(
            claim_cond,
            vec![wr1a(r("sb"), var("rd"), var("sbd").add(k(2, 1)))],
        )],
    ));
    good_path.extend(vec![
        wr1(r("d2e_valid"), k(1, 1)),
        wr1(r("d2e_pc"), rd0(r("f2d_pc"))),
        wr1(r("d2e_ppc"), rd0(r("f2d_ppc"))),
        wr1(r("d2e_epoch"), rd0(r("f2d_epoch"))),
        wr1(r("d2e_instr"), var("instr")),
        wr1(r("d2e_rval1"), var("rval1")),
        wr1(r("d2e_rval2"), var("rval2")),
        wr0(r("f2d_valid"), k(1, 0)),
        wr0(r("imem_resp_valid"), k(1, 0)),
    ]);

    let drop_path = vec![
        named("squash_wrong_path", Vec::new()),
        wr0(r("f2d_valid"), k(1, 0)),
        wr0(r("imem_resp_valid"), k(1, 0)),
    ];

    let _ = cfg;
    let body = vec![
        guard(rd0(r("f2d_valid")).eq(k(1, 1))),
        guard(rd0(r("imem_resp_valid")).eq(k(1, 1))),
        let_("instr", rd0(r("imem_resp_data"))),
        let_("opcode", var("instr").slice(0, 7)),
        let_("rd", var("instr").slice(7, 5)),
        let_("rs1", var("instr").slice(15, 5)),
        let_("rs2", var("instr").slice(20, 5)),
        let_(
            "use_rs1",
            any(vec![
                op_is("opcode", OP_JALR),
                op_is("opcode", OP_BRANCH),
                op_is("opcode", OP_LOAD),
                op_is("opcode", OP_STORE),
                op_is("opcode", OP_OPIMM),
                op_is("opcode", OP_OP),
            ]),
        ),
        let_(
            "use_rs2",
            any(vec![
                op_is("opcode", OP_BRANCH),
                op_is("opcode", OP_STORE),
                op_is("opcode", OP_OP),
            ]),
        ),
        let_(
            "writes_rd",
            any(vec![
                op_is("opcode", OP_LUI),
                op_is("opcode", OP_AUIPC),
                op_is("opcode", OP_JAL),
                op_is("opcode", OP_JALR),
                op_is("opcode", OP_LOAD),
                op_is("opcode", OP_OPIMM),
                op_is("opcode", OP_OP),
            ]),
        ),
        iff(
            rd1(r("epoch")).eq(rd0(r("f2d_epoch"))),
            good_path,
            drop_path,
        ),
    ];
    b.rule(r("decode"), body);
}

fn build_execute(b: &mut DesignBuilder, p: &str, cfg: &CoreCfg) {
    let r = |name: &str| format!("{p}{name}");

    // The good-path body (epoch matches).
    let mut good = vec![
        let_("is_load", op_is("opcode", OP_LOAD)),
        let_("is_store", op_is("opcode", OP_STORE)),
        let_("is_mem", var("is_load").or(var("is_store"))),
        // Stall while the data-memory port is busy.
        named(
            "dmem_busy_stall",
            vec![when(
                var("is_mem")
                    .eq(k(1, 1))
                    .and(rd0(r("dmem_req_valid")).eq(k(1, 1))),
                vec![abort()],
            )],
        ),
        // Immediates.
        let_("imm_i", var("instr").slice(20, 12).sext(32)),
        let_(
            "imm_s",
            var("instr")
                .slice(25, 7)
                .concat(var("instr").slice(7, 5))
                .sext(32),
        ),
        let_(
            "imm_b",
            var("instr")
                .bit(31)
                .concat(var("instr").bit(7))
                .concat(var("instr").slice(25, 6))
                .concat(var("instr").slice(8, 4))
                .concat(k(1, 0))
                .sext(32),
        ),
        let_("imm_u", var("instr").slice(12, 20).concat(k(12, 0))),
        let_(
            "imm_j",
            var("instr")
                .bit(31)
                .concat(var("instr").slice(12, 8))
                .concat(var("instr").bit(20))
                .concat(var("instr").slice(21, 10))
                .concat(k(1, 0))
                .sext(32),
        ),
        let_("f3", var("instr").slice(12, 3)),
        let_("bit30", var("instr").bit(30)),
        let_("is_op", op_is("opcode", OP_OP)),
        // ALU.
        let_(
            "bval",
            select(var("is_op"), var("rv2"), var("imm_i")),
        ),
        let_("shamt", var("bval").slice(0, 5)),
        let_("sum", var("rv1").add(var("bval"))),
        let_("diff", var("rv1").sub(var("bval"))),
        let_(
            "addsub",
            select(
                var("is_op").and(var("bit30")),
                var("diff"),
                var("sum"),
            ),
        ),
        let_("sltv", var("rv1").slt(var("bval")).zext(32)),
        let_("ultv", var("rv1").ult(var("bval")).zext(32)),
        let_("xorv", var("rv1").xor(var("bval"))),
        let_("orv", var("rv1").or(var("bval"))),
        let_("andv", var("rv1").and(var("bval"))),
        let_("sllv", var("rv1").shl(var("shamt"))),
        let_("srlv", var("rv1").shr(var("shamt"))),
        let_("srav", var("rv1").sra(var("shamt"))),
        let_(
            "shr_v",
            select(var("bit30"), var("srav"), var("srlv")),
        ),
        let_(
            "alu",
            select(
                var("f3").eq(k(3, 0)),
                var("addsub"),
                select(
                    var("f3").eq(k(3, 1)),
                    var("sllv"),
                    select(
                        var("f3").eq(k(3, 2)),
                        var("sltv"),
                        select(
                            var("f3").eq(k(3, 3)),
                            var("ultv"),
                            select(
                                var("f3").eq(k(3, 4)),
                                var("xorv"),
                                select(
                                    var("f3").eq(k(3, 5)),
                                    var("shr_v"),
                                    select(
                                        var("f3").eq(k(3, 6)),
                                        var("orv"),
                                        var("andv"),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
        // Branch decision.
        let_("eqv", var("rv1").eq(var("rv2"))),
        let_("sltr", var("rv1").slt(var("rv2"))),
        let_("ultr", var("rv1").ult(var("rv2"))),
        let_(
            "taken",
            select(
                var("f3").eq(k(3, 0)),
                var("eqv"),
                select(
                    var("f3").eq(k(3, 1)),
                    var("eqv").not(),
                    select(
                        var("f3").eq(k(3, 4)),
                        var("sltr"),
                        select(
                            var("f3").eq(k(3, 5)),
                            var("sltr").not(),
                            select(var("f3").eq(k(3, 6)), var("ultr"), var("ultr").not()),
                        ),
                    ),
                ),
            ),
        ),
        // Next PC.
        let_("pc4", var("pcv").add(k(32, 4))),
        let_("is_jal", op_is("opcode", OP_JAL)),
        let_("is_jalr", op_is("opcode", OP_JALR)),
        let_("is_branch", op_is("opcode", OP_BRANCH)),
        let_("jal_t", var("pcv").add(var("imm_j"))),
        let_(
            "jalr_t",
            var("rv1").add(var("imm_i")).and(k(32, 0xffff_fffe)),
        ),
        let_("br_t", var("pcv").add(var("imm_b"))),
        let_(
            "nextpc",
            select(
                var("is_jal"),
                var("jal_t"),
                select(
                    var("is_jalr"),
                    var("jalr_t"),
                    select(
                        var("is_branch").and(var("taken")),
                        var("br_t"),
                        var("pc4"),
                    ),
                ),
            ),
        ),
        // Value written back.
        let_(
            "value",
            select(
                op_is("opcode", OP_LUI),
                var("imm_u"),
                select(
                    op_is("opcode", OP_AUIPC),
                    var("pcv").add(var("imm_u")),
                    select(var("is_jal").or(var("is_jalr")), var("pc4"), var("alu")),
                ),
            ),
        ),
        // Memory access.
        let_("maddr", var("rv1").add(select(var("is_store"), var("imm_s"), var("imm_i")))),
        let_("alo", var("maddr").slice(0, 2)),
        let_("sh8", var("alo").concat(k(3, 0)).zext(32)),
        let_(
            "strb",
            select(
                var("f3").eq(k(3, 0)),
                k(4, 1).shl(var("alo").zext(4)),
                select(var("f3").eq(k(3, 1)), k(4, 3).shl(var("alo").zext(4)), k(4, 0xf)),
            ),
        ),
        when(
            var("is_load").eq(k(1, 1)),
            vec![
                wr0(r("dmem_req_valid"), k(1, 1)),
                wr0(r("dmem_req_addr"), var("maddr")),
                wr0(r("dmem_req_wen"), k(1, 0)),
            ],
        ),
        when(
            var("is_store").eq(k(1, 1)),
            vec![
                wr0(r("dmem_req_valid"), k(1, 1)),
                wr0(r("dmem_req_addr"), var("maddr")),
                wr0(r("dmem_req_wen"), k(1, 1)),
                wr0(r("dmem_req_wstrb"), var("strb")),
                wr0(r("dmem_req_wdata"), var("rv2").shl(var("sh8"))),
            ],
        ),
        // Retire into e2w.
        wr0(r("d2e_valid"), k(1, 0)),
        wr1(r("e2w_valid"), k(1, 1)),
        wr1(r("e2w_rd"), var("rd")),
        wr1(r("e2w_writes"), var("writes_rd")),
        wr1(r("e2w_is_load"), var("is_load")),
        wr1(r("e2w_f3"), var("f3")),
        wr1(r("e2w_alo"), var("alo")),
        wr1(r("e2w_val"), var("value")),
        wr1(r("e2w_poison"), k(1, 0)),
        // Redirect on misprediction.
        // (bypass publication is appended below when cfg.bypass is set)
        named(
            "mispredict",
            vec![when(
                var("nextpc").ne(var("ppc")),
                vec![
                    wr0(r("pc"), var("nextpc")),
                    wr0(r("epoch"), var("ep").not()),
                ],
            )],
        ),
    ];

    if cfg.bypass {
        // Publish this instruction's result on the forwarding wires. Loads
        // cannot forward (their value arrives with the memory response), so
        // they clear the wire, as do poisoned instructions below.
        good.extend(vec![
            named(
                "bypass_publish",
                vec![
                    wr0(
                        r("byp_valid"),
                        var("writes_rd").and(var("is_load").not()),
                    ),
                    wr0(r("byp_rd"), var("rd")),
                    wr0(r("byp_val"), var("value")),
                ],
            ),
        ]);
    }

    if cfg.bp {
        good.extend(vec![
            let_("bidx", var("pcv").slice(2, 4)),
            let_("hidx", var("pcv").slice(2, 6)),
            named(
                "bht_update",
                vec![when(
                    var("is_branch").eq(k(1, 1)),
                    vec![
                        let_("cnt", rd0a(r("bht"), var("hidx"))),
                        let_(
                            "cnt_up",
                            select(var("cnt").eq(k(2, 3)), var("cnt"), var("cnt").add(k(2, 1))),
                        ),
                        let_(
                            "cnt_dn",
                            select(var("cnt").eq(k(2, 0)), var("cnt"), var("cnt").sub(k(2, 1))),
                        ),
                        wr0a(
                            r("bht"),
                            var("hidx"),
                            select(var("taken"), var("cnt_up"), var("cnt_dn")),
                        ),
                    ],
                )],
            ),
            named(
                "btb_update",
                vec![when(
                    var("is_branch")
                        .and(var("taken"))
                        .or(var("is_jal"))
                        .or(var("is_jalr"))
                        .eq(k(1, 1)),
                    vec![
                        wr0a(r("btb_valid"), var("bidx"), k(1, 1)),
                        wr0a(r("btb_pc"), var("bidx"), var("pcv")),
                        wr0a(r("btb_target"), var("bidx"), var("nextpc")),
                    ],
                )],
            ),
        ]);
    }

    // Poisoned path: drain the instruction, release nothing but the
    // scoreboard (via writeback).
    let mut poisoned = vec![
        named("poisoned_drain", Vec::new()),
        wr0(r("d2e_valid"), k(1, 0)),
        wr1(r("e2w_valid"), k(1, 1)),
        wr1(r("e2w_rd"), var("rd")),
        wr1(r("e2w_writes"), var("writes_rd")),
        wr1(r("e2w_is_load"), k(1, 0)),
        wr1(r("e2w_f3"), k(3, 0)),
        wr1(r("e2w_alo"), k(2, 0)),
        wr1(r("e2w_val"), k(32, 0)),
        wr1(r("e2w_poison"), k(1, 1)),
    ];
    if cfg.bypass {
        poisoned.push(wr0(r("byp_valid"), k(1, 0)));
    }

    let body = vec![
        guard(rd0(r("d2e_valid")).eq(k(1, 1))),
        guard(rd1(r("e2w_valid")).eq(k(1, 0))),
        let_("instr", rd0(r("d2e_instr"))),
        let_("pcv", rd0(r("d2e_pc"))),
        let_("ppc", rd0(r("d2e_ppc"))),
        let_("rv1", rd0(r("d2e_rval1"))),
        let_("rv2", rd0(r("d2e_rval2"))),
        let_("ep", rd0(r("epoch"))),
        let_("opcode", var("instr").slice(0, 7)),
        let_("rd", var("instr").slice(7, 5)),
        let_(
            "writes_rd",
            any(vec![
                op_is("opcode", OP_LUI),
                op_is("opcode", OP_AUIPC),
                op_is("opcode", OP_JAL),
                op_is("opcode", OP_JALR),
                op_is("opcode", OP_LOAD),
                op_is("opcode", OP_OPIMM),
                op_is("opcode", OP_OP),
            ]),
        ),
        iff(rd0(r("d2e_epoch")).eq(var("ep")), good, poisoned),
    ];
    b.rule(r("execute"), body);
}

fn build_fetch(b: &mut DesignBuilder, p: &str, cfg: &CoreCfg) {
    let r = |name: &str| format!("{p}{name}");
    let mut body = vec![
        guard(rd1(r("f2d_valid")).eq(k(1, 0))),
        guard(rd0(r("imem_req_valid")).eq(k(1, 0))),
        let_("cur", rd1(r("pc"))),
        let_("pc4", var("cur").add(k(32, 4))),
    ];
    if cfg.bp {
        body.extend(vec![
            let_("bidx", var("cur").slice(2, 4)),
            let_("hidx", var("cur").slice(2, 6)),
            let_("bvalid", rd1a(r("btb_valid"), var("bidx"))),
            let_("bpc", rd1a(r("btb_pc"), var("bidx"))),
            let_("btgt", rd1a(r("btb_target"), var("bidx"))),
            let_("cnt", rd1a(r("bht"), var("hidx"))),
            let_(
                "hit",
                var("bvalid").eq(k(1, 1)).and(var("bpc").eq(var("cur"))),
            ),
            let_("pred_taken", var("cnt").bit(1)),
            let_(
                "pred",
                select(var("hit").and(var("pred_taken")), var("btgt"), var("pc4")),
            ),
        ]);
    } else {
        body.push(let_("pred", var("pc4")));
    }
    body.extend(vec![
        wr0(r("imem_req_valid"), k(1, 1)),
        wr0(r("imem_req_addr"), var("cur")),
        wr1(r("pc"), var("pred")),
        wr1(r("f2d_valid"), k(1, 1)),
        wr1(r("f2d_pc"), var("cur")),
        wr1(r("f2d_ppc"), var("pred")),
        wr1(r("f2d_epoch"), rd1(r("epoch"))),
    ]);
    b.rule(r("fetch"), body);
}

/// The baseline single-core RV32I design (Table 1's `rv32i`).
pub fn rv32i() -> Design {
    core_design("rv32i", &CoreCfg::rv32i())
}

/// The RV32E variant (16 registers; Table 1's `rv32e`).
pub fn rv32e() -> Design {
    core_design("rv32e", &CoreCfg::rv32e())
}

/// RV32I with the BTB + BHT branch predictor (Table 1's `rv32i-bp`).
pub fn rv32i_bp() -> Design {
    core_design(
        "rv32i-bp",
        &CoreCfg {
            bp: true,
            ..CoreCfg::rv32i()
        },
    )
}

/// RV32I with execute-to-decode forwarding (the case-study-4 follow-up).
pub fn rv32i_bypass() -> Design {
    core_design(
        "rv32i-bypass",
        &CoreCfg {
            bypass: true,
            ..CoreCfg::rv32i()
        },
    )
}

/// RV32I with both the branch predictor and the bypass paths — the
/// endpoint of the paper's design-exploration arc (case study 4 plus its
/// follow-up).
pub fn rv32i_bp_bypass() -> Design {
    core_design(
        "rv32i-bp-bypass",
        &CoreCfg {
            bp: true,
            bypass: true,
            ..CoreCfg::rv32i()
        },
    )
}

/// RV32I with x0 scoreboard bug of case study 3.
pub fn rv32i_x0bug() -> Design {
    core_design(
        "rv32i-x0bug",
        &CoreCfg {
            x0_bug: true,
            ..CoreCfg::rv32i()
        },
    )
}

fn core_design(name: &str, cfg: &CoreCfg) -> Design {
    let mut b = DesignBuilder::new(name);
    let schedule = build_core(&mut b, "", cfg, 0);
    b.schedule(schedule);
    b.build()
}

/// Byte address where the second core of [`rv32i_mc`] starts executing.
pub const MC_CORE1_PC: u32 = 0x2000;

/// The dual-core variant (Table 1's `rv32i-mc`): two independent RV32I
/// cores with register prefixes `c0_` / `c1_`, sharing one magic memory.
/// Core 1 boots at [`MC_CORE1_PC`].
pub fn rv32i_mc() -> Design {
    let mut b = DesignBuilder::new("rv32i-mc");
    let cfg = CoreCfg::rv32i();
    let mut schedule = build_core(&mut b, "c0_", &cfg, 0);
    schedule.extend(build_core(&mut b, "c1_", &cfg, MC_CORE1_PC));
    b.schedule(schedule);
    b.build()
}
