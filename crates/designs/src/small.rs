//! The small benchmark designs of Table 1: the `collatz` two-state machine
//! and the purely combinational `fir` and `fft` blocks.
//!
//! `collatz` is the paper's §2.1 running example — two mutually-exclusive
//! rules predicated on a state register, each doing "potentially complex
//! combinational work" (here, Collatz steps). `fir` and `fft` are
//! single-rule combinational designs with no scheduling or conflicts, where
//! the paper expects Cuttlesim's advantage over RTL simulation to be
//! narrowest (Fig. 1).

use koika::ast::*;
use koika::design::{Design, DesignBuilder};

/// The trivial two-state machine of §2.1, computing Collatz trajectories.
///
/// Registers: `st` (state A/B), `x` (working value), `input` (seed injected
/// by the harness when a trajectory finishes), `output` (last value
/// emitted), and `steps` (trajectory step counter).
pub fn collatz() -> Design {
    let mut b = DesignBuilder::new("collatz");
    b.reg("st", 1, 0u64);
    b.reg("x", 32, 27u64);
    b.reg("input", 32, 27u64);
    b.reg("output", 32, 0u64);
    b.reg("steps", 32, 0u64);

    // One Collatz step: x/2 if even, 3x+1 if odd; restart from `input` when
    // the trajectory reaches 1.
    let step = |out_rule: &str, st_now: u64, st_next: u64| {
        vec![
            guard(rd0("st").eq(k(1, st_now))),
            wr0("st", k(1, st_next)),
            let_("xv", rd0("x")),
            iff(
                var("xv").ule(k(32, 1)),
                vec![
                    wr0("x", rd0("input")),
                    wr0("steps", k(32, 0)),
                ],
                vec![
                    let_("even", var("xv").bit(0).eq(k(1, 0))),
                    let_("half", var("xv").shr(k(1, 1))),
                    let_("tripled", var("xv").mul(k(32, 3)).add(k(32, 1))),
                    let_("nx", select(var("even"), var("half"), var("tripled"))),
                    wr0("x", var("nx")),
                    wr0("steps", rd0("steps").add(k(32, 1))),
                    wr0("output", var("nx")),
                ],
            ),
            named(out_rule, Vec::new()),
        ]
    };

    b.rule("rlA", step("stepA", 0, 1));
    b.rule("rlB", step("stepB", 1, 0));
    b.schedule(["rlA", "rlB"]);
    b.build()
}

/// Number of taps in the [`fir`] filter.
pub const FIR_TAPS: usize = 8;

/// The FIR filter coefficients (small primes, so outputs are easy to check).
pub const FIR_COEFFS: [u64; FIR_TAPS] = [2, 3, 5, 7, 11, 13, 17, 19];

/// An 8-tap finite impulse response filter: one combinational rule shifting
/// the delay line and computing the dot product with [`FIR_COEFFS`].
///
/// The harness feeds `input` each cycle; `output` holds
/// `Σ coeff[i] · x[n - i]`.
pub fn fir() -> Design {
    let mut b = DesignBuilder::new("fir");
    b.reg("input", 32, 0u64);
    b.reg("output", 32, 0u64);
    for i in 0..FIR_TAPS {
        b.reg(format!("tap{i}"), 32, 0u64);
    }
    // Gather all tap values first (reads strictly before writes keeps the
    // rule free of same-register read-after-write patterns, so every
    // backend — including the accumulated-log Cuttlesim levels — agrees).
    let mut body = vec![let_("x0", rd0("input"))];
    for i in 0..FIR_TAPS - 1 {
        body.push(let_(format!("t{i}"), rd0(format!("tap{i}"))));
    }
    for i in (1..FIR_TAPS).rev() {
        body.push(wr0(format!("tap{i}"), var(format!("t{}", i - 1))));
    }
    body.push(wr0("tap0", var("x0")));
    let mut acc = var("x0").mul(k(32, FIR_COEFFS[0]));
    for (i, c) in FIR_COEFFS.iter().enumerate().skip(1) {
        acc = acc.add(var(format!("t{}", i - 1)).mul(k(32, *c)));
    }
    body.push(wr0("output", acc));
    b.rule("fir_step", body);
    b.build()
}

/// Points in the [`fft`] butterfly network.
pub const FFT_POINTS: usize = 8;

/// The butterfly parts of an 8-point radix-2 FFT over 16.16 fixed-point
/// complex numbers, packed as `{re[31:16], im[15:0]}` — one big
/// combinational rule computing all three stages (12 butterflies) per cycle.
///
/// Twiddle factors use the exact values for N = 8 (±1, ±j, ±√2/2(1±j))
/// rounded to fixed point. The harness rotates fresh inputs in through
/// `in0..in7`; results appear in `out0..out7`.
pub fn fft() -> Design {
    // Fixed-point helpers over packed complex values, as pure expression
    // combinators.
    fn re(e: Expr) -> Expr {
        e.slice(16, 16).sext(32)
    }
    fn im(e: Expr) -> Expr {
        e.slice(0, 16).sext(32)
    }
    fn pack(r: Expr, i: Expr) -> Expr {
        r.slice(0, 16).concat(i.slice(0, 16))
    }
    fn cadd(a: Expr, b: Expr) -> Expr {
        pack(re(a.clone()).add(re(b.clone())), im(a).add(im(b)))
    }
    fn csub(a: Expr, b: Expr) -> Expr {
        pack(re(a.clone()).sub(re(b.clone())), im(a).sub(im(b)))
    }
    // Multiply by twiddle W8^k for k = 0..3 in 2.14 fixed point:
    // W0 = 1, W1 = (c, -c), W2 = -j, W3 = (-c, -c) with c = cos(45°).
    fn cmul_w(a: Expr, kk: usize) -> Expr {
        const C: i64 = 11585; // round(cos(45°) * 2^14)
        let (wr, wi): (i64, i64) = match kk {
            0 => (1 << 14, 0),
            1 => (C, -C),
            2 => (0, -(1 << 14)),
            _ => (-C, -C),
        };
        let kw = |v: i64| kbits(koika::Bits::new(32, (v as u32) as u64));
        let ar = re(a.clone());
        let ai = im(a);
        // (ar + j·ai)(wr + j·wi) >> 14
        let rr = ar
            .clone()
            .mul(kw(wr))
            .sub(ai.clone().mul(kw(wi)))
            .sra(k(5, 14));
        let ri = ar.mul(kw(wi)).add(ai.mul(kw(wr))).sra(k(5, 14));
        pack(rr, ri)
    }
    let mut b = DesignBuilder::new("fft");
    for i in 0..FFT_POINTS {
        b.reg(format!("in{i}"), 32, 0u64);
        b.reg(format!("out{i}"), 32, 0u64);
    }

    // Build the 3-stage butterfly network as a pure expression DAG over
    // lets (decimation in frequency, bit-reversed outputs).
    let mut body = Vec::new();
    for i in 0..FFT_POINTS {
        body.push(let_(format!("s0_{i}"), rd0(format!("in{i}"))));
    }
    let mut stage = 0;
    let mut half = FFT_POINTS / 2;
    while half >= 1 {
        let prev = move |i: usize| var(format!("s{stage}_{i}"));
        for blk in (0..FFT_POINTS).step_by(half * 2) {
            for j in 0..half {
                let (a, bb) = (blk + j, blk + j + half);
                let tw = (j * (FFT_POINTS / (2 * half))) % 4;
                body.push(let_(
                    format!("s{}_{a}", stage + 1),
                    cadd(prev(a), prev(bb)),
                ));
                body.push(let_(
                    format!("s{}_{bb}", stage + 1),
                    cmul_w(csub(prev(a), prev(bb)), tw),
                ));
            }
        }
        stage += 1;
        half /= 2;
    }
    // Bit-reversed output order.
    for i in 0..FFT_POINTS {
        let rev = (i as u32).reverse_bits() >> (32 - 3);
        body.push(wr0(format!("out{rev}"), var(format!("s{stage}_{i}"))));
    }
    b.rule("butterflies", body);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::check::check;
    use koika::device::{RegAccess, SimBackend};
    use koika::interp::Interp;

    #[test]
    fn collatz_follows_trajectory() {
        let td = check(&collatz()).unwrap();
        let mut sim = Interp::new(&td);
        // 27 -> 82 -> 41 -> 124 ...
        sim.cycle();
        assert_eq!(sim.get64(td.reg_id("x")), 82);
        sim.cycle();
        assert_eq!(sim.get64(td.reg_id("x")), 41);
        sim.cycle();
        assert_eq!(sim.get64(td.reg_id("x")), 124);
        // The two rules alternate.
        assert_eq!(sim.fired_per_rule(), &[2, 1]);
    }

    #[test]
    fn collatz_terminates_and_restarts() {
        let td = check(&collatz()).unwrap();
        let mut sim = Interp::new(&td);
        // The 27 trajectory takes 111 steps to reach 1.
        for _ in 0..111 {
            sim.cycle();
        }
        assert_eq!(sim.get64(td.reg_id("x")), 1);
        sim.cycle(); // restart from input
        assert_eq!(sim.get64(td.reg_id("x")), 27);
        assert_eq!(sim.get64(td.reg_id("steps")), 0);
    }

    #[test]
    fn fir_computes_dot_product() {
        let td = check(&fir()).unwrap();
        let mut sim = Interp::new(&td);
        let inputs: Vec<u64> = (1..=20).collect();
        let mut history: Vec<u64> = Vec::new();
        for &x in &inputs {
            sim.set64(td.reg_id("input"), x);
            history.push(x);
            sim.cycle();
            let expected: u64 = FIR_COEFFS
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i < history.len() {
                        c * history[history.len() - 1 - i]
                    } else {
                        0
                    }
                })
                .sum::<u64>()
                & 0xffff_ffff;
            assert_eq!(sim.get64(td.reg_id("output")), expected, "after x={x}");
        }
    }

    fn pack(re: i32, im: i32) -> u64 {
        ((((re as u32) & 0xffff) << 16) | ((im as u32) & 0xffff)) as u64
    }

    fn unpack(v: u64) -> (i32, i32) {
        let re = ((v >> 16) as u16) as i16 as i32;
        let im = (v as u16) as i16 as i32;
        (re, im)
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        // FFT of a unit impulse is constant across all bins.
        let td = check(&fft()).unwrap();
        let mut sim = Interp::new(&td);
        sim.set64(td.reg_id("in0"), pack(1000, 0));
        sim.cycle();
        for i in 0..FFT_POINTS {
            let (re, im) = unpack(sim.get64(td.reg_id(&format!("out{i}"))));
            assert_eq!((re, im), (1000, 0), "bin {i}");
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let td = check(&fft()).unwrap();
        let mut sim = Interp::new(&td);
        for i in 0..FFT_POINTS {
            sim.set64(td.reg_id(&format!("in{i}")), pack(100, 0));
        }
        sim.cycle();
        let (re0, im0) = unpack(sim.get64(td.reg_id("out0")));
        assert_eq!((re0, im0), (800, 0), "DC bin sums all inputs");
        for i in 1..FFT_POINTS {
            let (re, im) = unpack(sim.get64(td.reg_id(&format!("out{i}"))));
            assert!(
                re.abs() <= 2 && im.abs() <= 2,
                "bin {i} should be ~0, got ({re}, {im})"
            );
        }
    }
}
