//! The "magic" 1-cycle-latency memory device shared by all processor
//! designs and backends.
//!
//! Cores talk to memory through dedicated request/response registers; the
//! device runs at cycle boundaries (see [`koika::device`]), which keeps
//! every backend cycle-accurate with respect to every other one. A request
//! issued during cycle `N` is answered before cycle `N + 1` — the paper's
//! "idealized single-cycle memory" (case study 3).
//!
//! Protocol, per port:
//!
//! * the design asserts `req_valid` with `req_addr` (byte address),
//!   `req_wen`/`req_wstrb`/`req_wdata` for stores;
//! * between cycles, the device clears `req_valid` and performs the access;
//!   loads produce `resp_valid = 1` and `resp_data` (only when the previous
//!   response has been consumed — otherwise the request stays pending);
//!   stores complete silently;
//! * the design consumes a response by clearing `resp_valid`.

use koika::device::{Device, RegAccess};
use koika::design::DesignBuilder;
use koika::tir::{RegId, TDesign};

/// The register names of one memory port (all prefixed with the port name).
#[derive(Debug, Clone)]
pub struct MemPort {
    /// Port name prefix (e.g. `"imem"` or `"c0_dmem"`).
    pub prefix: String,
}

impl MemPort {
    /// Declares the port's registers on a design under construction.
    pub fn declare(b: &mut DesignBuilder, prefix: &str) -> MemPort {
        b.reg(format!("{prefix}_req_valid"), 1, 0u64);
        b.reg(format!("{prefix}_req_addr"), 32, 0u64);
        b.reg(format!("{prefix}_req_wen"), 1, 0u64);
        b.reg(format!("{prefix}_req_wstrb"), 4, 0u64);
        b.reg(format!("{prefix}_req_wdata"), 32, 0u64);
        b.reg(format!("{prefix}_resp_valid"), 1, 0u64);
        b.reg(format!("{prefix}_resp_data"), 32, 0u64);
        MemPort {
            prefix: prefix.to_string(),
        }
    }

    /// The register name `{prefix}_{field}`.
    pub fn reg(&self, field: &str) -> String {
        format!("{}_{field}", self.prefix)
    }
}

/// Resolved register ids of a memory port, for the device's fast path.
#[derive(Debug, Clone, Copy)]
struct PortRegs {
    req_valid: RegId,
    req_addr: RegId,
    req_wen: RegId,
    req_wstrb: RegId,
    req_wdata: RegId,
    resp_valid: RegId,
    resp_data: RegId,
}

impl PortRegs {
    fn resolve(design: &TDesign, prefix: &str) -> PortRegs {
        PortRegs {
            req_valid: design.reg_id(&format!("{prefix}_req_valid")),
            req_addr: design.reg_id(&format!("{prefix}_req_addr")),
            req_wen: design.reg_id(&format!("{prefix}_req_wen")),
            req_wstrb: design.reg_id(&format!("{prefix}_req_wstrb")),
            req_wdata: design.reg_id(&format!("{prefix}_req_wdata")),
            resp_valid: design.reg_id(&format!("{prefix}_resp_valid")),
            resp_data: design.reg_id(&format!("{prefix}_resp_data")),
        }
    }
}

/// A word-addressed magic memory servicing any number of ports.
#[derive(Debug, Clone)]
pub struct MagicMemory {
    mem: Vec<u32>,
    ports: Vec<PortRegs>,
}

impl MagicMemory {
    /// Creates a memory of `words` 32-bit words with `program` loaded at
    /// byte address `0`, serving the named ports of `design`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit or a port's registers are missing
    /// from the design.
    pub fn new(design: &TDesign, ports: &[&str], program: &[u32], words: usize) -> MagicMemory {
        let mut m = MagicMemory {
            mem: vec![0; words],
            ports: ports.iter().map(|p| PortRegs::resolve(design, p)).collect(),
        };
        m.load(0, program);
        m
    }

    /// Loads `program` at the given byte address.
    ///
    /// # Panics
    ///
    /// Panics if it does not fit.
    pub fn load(&mut self, byte_addr: u32, program: &[u32]) {
        let base = (byte_addr >> 2) as usize;
        assert!(
            base + program.len() <= self.mem.len(),
            "program does not fit in memory"
        );
        self.mem[base..base + program.len()].copy_from_slice(program);
    }

    /// Reads a memory word (by byte address).
    pub fn word(&self, byte_addr: u32) -> u32 {
        self.mem[(byte_addr >> 2) as usize % self.mem.len()]
    }

    /// The whole memory contents.
    pub fn words(&self) -> &[u32] {
        &self.mem
    }
}

impl Device for MagicMemory {
    // Stores mutate `mem`, so the debugger must checkpoint it alongside
    // the architectural registers; the port bindings are immutable config
    // and stay out of the blob.
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.mem.len() * 4);
        for w in &self.mem {
            out.extend_from_slice(&w.to_le_bytes());
        }
        Some(out)
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        if state.len() != self.mem.len() * 4 {
            return Err(format!(
                "memory state is {} bytes, expected {}",
                state.len(),
                self.mem.len() * 4
            ));
        }
        for (w, chunk) in self.mem.iter_mut().zip(state.chunks_exact(4)) {
            *w = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Ok(())
    }

    fn tick(&mut self, _cycle: u64, regs: &mut dyn RegAccess) {
        for p in &self.ports {
            if regs.get64(p.req_valid) == 0 {
                continue;
            }
            let addr = regs.get64(p.req_addr) as u32;
            let idx = (addr >> 2) as usize % self.mem.len();
            if regs.get64(p.req_wen) != 0 {
                // Stores complete immediately and silently.
                let strb = regs.get64(p.req_wstrb) as u32;
                let wdata = regs.get64(p.req_wdata) as u32;
                let mut word = self.mem[idx];
                for byte in 0..4 {
                    if strb & (1 << byte) != 0 {
                        let mask = 0xffu32 << (byte * 8);
                        word = (word & !mask) | (wdata & mask);
                    }
                }
                self.mem[idx] = word;
                regs.set64(p.req_valid, 0);
            } else {
                // Loads respond only when the response slot is free.
                if regs.get64(p.resp_valid) == 0 {
                    regs.set64(p.resp_data, self.mem[idx] as u64);
                    regs.set64(p.resp_valid, 1);
                    regs.set64(p.req_valid, 0);
                }
            }
        }
    }
}
