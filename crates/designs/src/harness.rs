//! Shared run harnesses: load a program, tick the memory device, run a
//! backend until the program completes, and extract architectural state for
//! golden-model comparison.

use crate::memdev::MagicMemory;
use koika::device::{Device, SimBackend};
use koika::tir::TDesign;
use koika_riscv::golden::{Exit, Golden};

/// Outcome of running a program on a core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreRun {
    /// Cycles executed until the retire target was reached (or the budget).
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Whether the retire target was reached within the cycle budget.
    pub completed: bool,
}

/// Default memory size for core runs, in 32-bit words.
pub const MEM_WORDS: usize = 4096;

/// Runs `sim` (with `mem` as its memory device) until the core with name
/// prefix `prefix` has retired `target_retired` instructions, up to
/// `max_cycles`.
pub fn run_until_retired(
    sim: &mut dyn SimBackend,
    mem: &mut MagicMemory,
    td: &TDesign,
    prefix: &str,
    target_retired: u64,
    max_cycles: u64,
) -> CoreRun {
    let retired = td.reg_id(&format!("{prefix}retired"));
    let mut cycles = 0;
    while cycles < max_cycles {
        if sim.as_reg_access().get64(retired) >= target_retired {
            return CoreRun {
                cycles,
                retired: sim.as_reg_access().get64(retired),
                completed: true,
            };
        }
        mem.tick(cycles, sim.as_reg_access());
        sim.cycle();
        cycles += 1;
    }
    CoreRun {
        cycles,
        retired: sim.as_reg_access().get64(retired),
        completed: false,
    }
}

/// Runs the golden model to completion and returns it (for its
/// architectural state and retire count).
///
/// # Panics
///
/// Panics if the program does not halt within `max_steps`.
pub fn golden_run(program: &[u32], max_steps: u64) -> Golden {
    let mut g = Golden::new(program, MEM_WORDS);
    let exit = g.run(max_steps);
    assert_eq!(exit, Exit::Halted, "golden model did not halt: {exit:?}");
    g
}

/// Extracts the core's architectural register file.
pub fn reg_file(sim: &mut dyn SimBackend, td: &TDesign, prefix: &str, nregs: u32) -> Vec<u32> {
    (0..nregs)
        .map(|i| {
            sim.as_reg_access()
                .get64(td.reg_elem(&format!("{prefix}rf"), i)) as u32
        })
        .collect()
}

/// Asserts that a finished core run matches the golden model's
/// architectural state: the register file and every memory word.
///
/// # Panics
///
/// Panics (with context) on the first divergence.
pub fn assert_matches_golden(
    sim: &mut dyn SimBackend,
    mem: &MagicMemory,
    td: &TDesign,
    prefix: &str,
    nregs: u32,
    golden: &Golden,
) {
    let rf = reg_file(sim, td, prefix, nregs);
    for (i, &v) in rf.iter().enumerate() {
        assert_eq!(
            v, golden.regs[i],
            "architectural register x{i} diverges from the golden model"
        );
    }
    for (i, &w) in mem.words().iter().enumerate() {
        assert_eq!(
            w,
            golden.load_word((i * 4) as u32),
            "memory word {i} diverges from the golden model"
        );
    }
}
