//! A reusable one-entry FIFO building block — the idiomatic Kôika
//! inter-rule channel used throughout this crate's designs.
//!
//! The port discipline gives full throughput with one entry:
//!
//! * the **consumer** rule runs earlier in the schedule, observes the entry
//!   at port 0 and clears `valid` with a port-0 write;
//! * the **producer** rule runs later, sees the freed slot through a port-1
//!   read (same-cycle reuse) and fills it with port-1 writes (visible to
//!   the consumer next cycle).
//!
//! Under this discipline the FIFO sustains one element per cycle —
//! simultaneous enqueue and dequeue — while a conflicting access order
//! simply stalls (the rule aborts and retries), never corrupts.
//!
//! # Examples
//!
//! ```
//! use koika::{ast::*, design::DesignBuilder, check, interp::Interp};
//! use koika::device::{RegAccess, SimBackend};
//! use koika_designs::fifo::Fifo1;
//!
//! let mut b = DesignBuilder::new("pipe");
//! b.reg("src", 16, 0u64);
//! b.reg("dst", 16, 0u64);
//! let q = Fifo1::declare(&mut b, "q", 16);
//!
//! // Consumer first in the schedule...
//! b.rule("pop", {
//!     let mut body = vec![guard(q.can_deq())];
//!     body.push(wr0("dst", q.first()));
//!     body.extend(q.deq());
//!     body
//! });
//! // ... producer second.
//! b.rule("push", {
//!     let mut body = vec![
//!         guard(q.can_enq()),
//!         wr0("src", rd0("src").add(k(16, 1))),
//!     ];
//!     body.extend(q.enq(rd0("src")));
//!     body
//! });
//! b.schedule(["pop", "push"]);
//!
//! let design = check::check(&b.build())?;
//! let mut sim = Interp::new(&design);
//! for _ in 0..10 { sim.cycle(); }
//! // Steady state: one element per cycle, dst trails src by the one-cycle
//! // FIFO latency.
//! assert_eq!(sim.get64(design.reg_id("dst")) + 2, sim.get64(design.reg_id("src")));
//! # Ok::<(), koika::check::CheckError>(())
//! ```

use koika::ast::*;
use koika::design::DesignBuilder;

/// Handle to a declared one-entry FIFO (register names, not state).
#[derive(Debug, Clone)]
pub struct Fifo1 {
    valid: String,
    data: String,
}

impl Fifo1 {
    /// Declares the FIFO's registers (`{name}_valid`, `{name}_data`) on a
    /// design under construction.
    pub fn declare(b: &mut DesignBuilder, name: &str, width: u32) -> Fifo1 {
        let valid = format!("{name}_valid");
        let data = format!("{name}_data");
        b.reg(&valid, 1, 0u64);
        b.reg(&data, width, 0u64);
        Fifo1 { valid, data }
    }

    /// 1-bit condition: an element is available (consumer side, port 0).
    pub fn can_deq(&self) -> Expr {
        rd0(&self.valid).eq(k(1, 1))
    }

    /// The element at the head (consumer side, port 0).
    pub fn first(&self) -> Expr {
        rd0(&self.data)
    }

    /// Dequeue actions: clears `valid` at port 0. Guard with
    /// [`Fifo1::can_deq`] first.
    pub fn deq(&self) -> Vec<Action> {
        vec![wr0(&self.valid, k(1, 0))]
    }

    /// 1-bit condition: the slot is free (producer side, port 1 — sees a
    /// same-cycle dequeue).
    pub fn can_enq(&self) -> Expr {
        rd1(&self.valid).eq(k(1, 0))
    }

    /// Enqueue actions: fills the slot at port 1 (visible next cycle).
    /// Guard with [`Fifo1::can_enq`] first.
    pub fn enq(&self, value: Expr) -> Vec<Action> {
        vec![wr1(&self.valid, k(1, 1)), wr1(&self.data, value)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koika::check::check;
    use koika::design::DesignBuilder;
    use koika::device::{RegAccess, SimBackend};
    use koika::interp::Interp;

    /// Producer and consumer at full rate: every value passes through, in
    /// order, one per cycle.
    #[test]
    fn sustains_one_element_per_cycle_in_order() {
        let mut b = DesignBuilder::new("rate");
        b.reg("next", 16, 0u64);
        b.reg("got", 16, 0u64);
        b.reg("count", 16, 0u64);
        let q = Fifo1::declare(&mut b, "q", 16);
        b.rule("pop", {
            let mut body = vec![guard(q.can_deq())];
            // In-order check in hardware: each dequeued value must be
            // exactly one more than the last.
            body.push(guard(q.first().eq(rd0("got").add(k(16, 1)))));
            body.push(wr0("got", q.first()));
            body.push(wr0("count", rd0("count").add(k(16, 1))));
            body.extend(q.deq());
            body
        });
        b.rule("push", {
            let mut body = vec![guard(q.can_enq())];
            body.push(wr0("next", rd0("next").add(k(16, 1))));
            body.extend(q.enq(rd0("next").add(k(16, 1))));
            body
        });
        b.schedule(["pop", "push"]);
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        for _ in 0..100 {
            sim.cycle();
        }
        // 99 dequeues in 100 cycles (one-cycle fill latency), all in order.
        assert_eq!(sim.get64(td.reg_id("count")), 99);
        assert_eq!(sim.get64(td.reg_id("got")), 99);
    }

    /// A stalled consumer back-pressures the producer without losing data.
    #[test]
    fn backpressure_stalls_the_producer() {
        let mut b = DesignBuilder::new("bp");
        b.reg("go", 1, 0u64);
        b.reg("pushed", 16, 0u64);
        b.reg("popped", 16, 0u64);
        let q = Fifo1::declare(&mut b, "q", 16);
        b.rule("pop", {
            let mut body = vec![guard(rd0("go").eq(k(1, 1))), guard(q.can_deq())];
            body.push(wr0("popped", rd0("popped").add(k(16, 1))));
            body.extend(q.deq());
            body
        });
        b.rule("push", {
            let mut body = vec![guard(q.can_enq())];
            body.push(wr0("pushed", rd0("pushed").add(k(16, 1))));
            body.extend(q.enq(rd0("pushed")));
            body
        });
        b.schedule(["pop", "push"]);
        let td = check(&b.build()).unwrap();
        let mut sim = Interp::new(&td);
        for _ in 0..10 {
            sim.cycle();
        }
        // Consumer disabled: exactly one element fits, then the producer
        // stalls.
        assert_eq!(sim.get64(td.reg_id("pushed")), 1);
        assert_eq!(sim.get64(td.reg_id("popped")), 0);
        sim.set64(td.reg_id("go"), 1);
        for _ in 0..10 {
            sim.cycle();
        }
        assert_eq!(sim.get64(td.reg_id("popped")), 10);
        assert_eq!(sim.get64(td.reg_id("pushed")), 11);
    }
}
