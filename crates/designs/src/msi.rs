//! A 2-core MSI cache-coherence system — the subject of the paper's case
//! study 1 ("debugging a deadlock in a 2-core machine with L1 'child'
//! caches and a 'parent' protocol engine implementing the MSI cache
//! coherence protocol").
//!
//! Each core has an L1 cache (one line per memory word — the full MSI state
//! machine without eviction traffic, see DESIGN.md), a miss status handling
//! register (MSHR) whose state is exactly the paper's
//! `Ready / SendFillReq / WaitFillResp` enum, and four one-entry channels to
//! the parent: fill requests, grants, downgrade requests, and downgrade
//! acknowledgements. The parent keeps a directory per core and a
//! `Ready / ConfirmDowngrades` state machine.
//!
//! [`msi_system`] builds the healthy protocol; [`msi_system_buggy`] plants
//! the case study's deadlock: while confirming downgrades the parent waits
//! for an acknowledgement from the *requesting* core instead of the
//! *downgrading* one, so an upgrade that requires a downgrade wedges the
//! system — the requester stuck in `WaitFillResp`, the parent in
//! `ConfirmDowngrades`, precisely the state the paper's programmer finds in
//! gdb.

use koika::ast::*;
use koika::design::{Design, DesignBuilder};

/// Number of 32-bit words of shared memory (and cache lines per core).
pub const MSI_WORDS: u32 = 32;

/// MSHR states (the paper's enum).
pub mod mshr {
    /// No miss in flight.
    pub const READY: u64 = 0;
    /// A miss was allocated; the fill request still needs to be sent.
    pub const SEND_FILL_REQ: u64 = 1;
    /// Waiting for the parent's grant.
    pub const WAIT_FILL_RESP: u64 = 2;
}

/// Cache-line / directory states.
pub mod state {
    /// Invalid.
    pub const I: u64 = 0;
    /// Shared (clean, read-only).
    pub const S: u64 = 1;
    /// Modified (exclusive, dirty).
    pub const M: u64 = 2;
}

/// Parent protocol-engine states.
pub mod parent {
    /// Ready to accept a child request.
    pub const READY: u64 = 0;
    /// Waiting for downgrade acknowledgements.
    pub const CONFIRM_DOWNGRADES: u64 = 1;
}

fn build_child(b: &mut DesignBuilder, i: usize) {
    let r = |n: &str| format!("c{i}_{n}");

    b.array(r("cstate"), 2, MSI_WORDS, state::I);
    b.array(r("cdata"), 32, MSI_WORDS, 0u64);

    // CPU interface (driven by the traffic-generator device).
    b.reg(r("cpu_req_valid"), 1, 0u64);
    b.reg(r("cpu_req_addr"), 5, 0u64);
    b.reg(r("cpu_req_wdata"), 32, 0u64);
    b.reg(r("cpu_req_store"), 1, 0u64);
    b.reg(r("cpu_resp_valid"), 1, 0u64);
    b.reg(r("cpu_resp_data"), 32, 0u64);

    // MSHR.
    b.reg(r("mshr_state"), 2, mshr::READY);
    b.reg(r("mshr_addr"), 5, 0u64);
    b.reg(r("mshr_store"), 1, 0u64);
    b.reg(r("mshr_wdata"), 32, 0u64);

    // Channels to/from the parent.
    b.reg(r("req_valid"), 1, 0u64);
    b.reg(r("req_addr"), 5, 0u64);
    b.reg(r("req_wantm"), 1, 0u64);
    b.reg(r("grant_valid"), 1, 0u64);
    b.reg(r("grant_addr"), 5, 0u64);
    b.reg(r("grant_data"), 32, 0u64);
    b.reg(r("grant_m"), 1, 0u64);
    b.reg(r("dg_valid"), 1, 0u64);
    b.reg(r("dg_addr"), 5, 0u64);
    b.reg(r("dg_to_s"), 1, 0u64); // 1: downgrade to S; 0: invalidate
    b.reg(r("ack_valid"), 1, 0u64);
    b.reg(r("ack_addr"), 5, 0u64);
    b.reg(r("ack_data"), 32, 0u64);
    b.reg(r("ack_dirty"), 1, 0u64);

    // Receive a grant: fill the line and complete the pending CPU request.
    b.rule(
        r("fill"),
        vec![
            guard(rd0(r("grant_valid")).eq(k(1, 1))),
            wr0(r("grant_valid"), k(1, 0)),
            let_("a", rd0(r("grant_addr"))),
            let_("m", rd0(r("grant_m"))),
            let_("d", rd0(r("grant_data"))),
            let_("store", rd0(r("mshr_store"))),
            let_("wdata", rd0(r("mshr_wdata"))),
            let_("newd", select(var("store").eq(k(1, 1)), var("wdata"), var("d"))),
            wr0a(
                r("cstate"),
                var("a"),
                select(var("m").eq(k(1, 1)), k(2, state::M), k(2, state::S)),
            ),
            wr0a(r("cdata"), var("a"), var("newd")),
            wr1(r("mshr_state"), k(2, mshr::READY)),
            wr0(r("cpu_resp_valid"), k(1, 1)),
            wr0(r("cpu_resp_data"), var("newd")),
        ],
    );

    // Service a downgrade request: shrink our rights, acknowledge with the
    // (possibly dirty) data.
    b.rule(
        r("downgrade"),
        vec![
            guard(rd0(r("dg_valid")).eq(k(1, 1))),
            guard(rd1(r("ack_valid")).eq(k(1, 0))),
            wr0(r("dg_valid"), k(1, 0)),
            let_("a", rd0(r("dg_addr"))),
            let_("to_s", rd0(r("dg_to_s"))),
            let_("st", rd0a(r("cstate"), var("a"))),
            let_("d", rd0a(r("cdata"), var("a"))),
            wr0a(
                r("cstate"),
                var("a"),
                select(var("to_s").eq(k(1, 1)), k(2, state::S), k(2, state::I)),
            ),
            wr1(r("ack_valid"), k(1, 1)),
            wr1(r("ack_addr"), var("a")),
            wr1(r("ack_data"), var("d")),
            wr1(r("ack_dirty"), var("st").eq(k(2, state::M))),
        ],
    );

    // CPU request that hits in the cache.
    b.rule(
        r("hit"),
        vec![
            guard(rd0(r("cpu_req_valid")).eq(k(1, 1))),
            guard(rd0(r("mshr_state")).eq(k(2, mshr::READY))),
            let_("a", rd0(r("cpu_req_addr"))),
            let_("store", rd0(r("cpu_req_store"))),
            let_("st", rd0a(r("cstate"), var("a"))),
            let_(
                "is_hit",
                select(
                    var("store").eq(k(1, 1)),
                    var("st").eq(k(2, state::M)),
                    var("st").ne(k(2, state::I)),
                ),
            ),
            guard(var("is_hit")),
            wr0(r("cpu_req_valid"), k(1, 0)),
            let_("d", rd0a(r("cdata"), var("a"))),
            let_("wdata", rd0(r("cpu_req_wdata"))),
            when(
                var("store").eq(k(1, 1)),
                vec![wr0a(r("cdata"), var("a"), var("wdata"))],
            ),
            wr0(r("cpu_resp_valid"), k(1, 1)),
            wr0(
                r("cpu_resp_data"),
                select(var("store").eq(k(1, 1)), var("wdata"), var("d")),
            ),
        ],
    );

    // CPU request that misses: allocate the MSHR.
    b.rule(
        r("start_miss"),
        vec![
            guard(rd0(r("cpu_req_valid")).eq(k(1, 1))),
            guard(rd0(r("mshr_state")).eq(k(2, mshr::READY))),
            let_("a", rd0(r("cpu_req_addr"))),
            let_("store", rd0(r("cpu_req_store"))),
            let_("st", rd0a(r("cstate"), var("a"))),
            let_(
                "is_hit",
                select(
                    var("store").eq(k(1, 1)),
                    var("st").eq(k(2, state::M)),
                    var("st").ne(k(2, state::I)),
                ),
            ),
            guard(var("is_hit").not()),
            wr0(r("cpu_req_valid"), k(1, 0)),
            wr0(r("mshr_state"), k(2, mshr::SEND_FILL_REQ)),
            wr0(r("mshr_addr"), var("a")),
            wr0(r("mshr_store"), var("store")),
            wr0(r("mshr_wdata"), rd0(r("cpu_req_wdata"))),
        ],
    );

    // Send the fill request to the parent.
    b.rule(
        r("send_fill"),
        vec![
            guard(rd0(r("mshr_state")).eq(k(2, mshr::SEND_FILL_REQ))),
            guard(rd1(r("req_valid")).eq(k(1, 0))),
            wr1(r("req_valid"), k(1, 1)),
            wr1(r("req_addr"), rd0(r("mshr_addr"))),
            wr1(r("req_wantm"), rd0(r("mshr_store"))),
            wr0(r("mshr_state"), k(2, mshr::WAIT_FILL_RESP)),
        ],
    );
}

fn build_parent(b: &mut DesignBuilder, buggy: bool) {
    b.array("pmem", 32, MSI_WORDS, 0u64);
    b.array("p_dir0", 2, MSI_WORDS, state::I);
    b.array("p_dir1", 2, MSI_WORDS, state::I);
    b.reg("p_state", 1, parent::READY);
    b.reg("p_req_core", 1, 0u64);
    b.reg("p_req_addr", 5, 0u64);
    b.reg("p_req_wantm", 1, 0u64);

    // One request-intake rule per child (child 0 has priority).
    for i in 0..2usize {
        let me = |n: &str| format!("c{i}_{n}");
        let other = |n: &str| format!("c{}_{n}", 1 - i);
        let dir_me = format!("p_dir{i}");
        let dir_other = format!("p_dir{}", 1 - i);
        b.rule(
            format!("p_start{i}"),
            vec![
                guard(rd0("p_state").eq(k(1, parent::READY))),
                guard(rd0(me("req_valid")).eq(k(1, 1))),
                wr0(me("req_valid"), k(1, 0)),
                let_("a", rd0(me("req_addr"))),
                let_("wm", rd0(me("req_wantm"))),
                let_("other_st", rd0a(&dir_other, var("a"))),
                let_(
                    "need_dg",
                    select(
                        var("wm").eq(k(1, 1)),
                        var("other_st").ne(k(2, state::I)),
                        var("other_st").eq(k(2, state::M)),
                    ),
                ),
                iff(
                    var("need_dg").eq(k(1, 1)),
                    vec![named(
                        "request_downgrade",
                        vec![
                            guard(rd1(other("dg_valid")).eq(k(1, 0))),
                            wr1(other("dg_valid"), k(1, 1)),
                            wr1(other("dg_addr"), var("a")),
                            wr1(other("dg_to_s"), var("wm").not()),
                            wr0("p_state", k(1, parent::CONFIRM_DOWNGRADES)),
                            wr0("p_req_core", k(1, i as u64)),
                            wr0("p_req_addr", var("a")),
                            wr0("p_req_wantm", var("wm")),
                        ],
                    )],
                    vec![named(
                        "grant_immediately",
                        vec![
                            guard(rd1(me("grant_valid")).eq(k(1, 0))),
                            wr1(me("grant_valid"), k(1, 1)),
                            wr1(me("grant_addr"), var("a")),
                            wr1(me("grant_data"), rd0a("pmem", var("a"))),
                            wr1(me("grant_m"), var("wm")),
                            wr0a(
                                &dir_me,
                                var("a"),
                                select(var("wm").eq(k(1, 1)), k(2, state::M), k(2, state::S)),
                            ),
                        ],
                    )],
                ),
            ],
        );
    }

    // Downgrade confirmation, one rule per requesting core. The healthy
    // parent waits for the *other* (downgrading) core's acknowledgement;
    // the buggy one waits for the requester's — which never arrives.
    for i in 0..2usize {
        let me = |n: &str| format!("c{i}_{n}");
        let other = |n: &str| format!("c{}_{n}", 1 - i);
        let ack = if buggy {
            me("ack_valid")
        } else {
            other("ack_valid")
        };
        let dir_me = format!("p_dir{i}");
        let dir_other = format!("p_dir{}", 1 - i);
        b.rule(
            format!("p_confirm{i}"),
            vec![
                guard(rd0("p_state").eq(k(1, parent::CONFIRM_DOWNGRADES))),
                guard(rd0("p_req_core").eq(k(1, i as u64))),
                named("wait_for_ack", vec![guard(rd0(&ack).eq(k(1, 1)))]),
                guard(rd1(me("grant_valid")).eq(k(1, 0))),
                wr0(other("ack_valid"), k(1, 0)),
                let_("a", rd0("p_req_addr")),
                let_("wm", rd0("p_req_wantm")),
                let_("dirty", rd0(other("ack_dirty"))),
                let_("adata", rd0(other("ack_data"))),
                let_("pdata", rd0a("pmem", var("a"))),
                when(
                    var("dirty").eq(k(1, 1)),
                    vec![wr0a("pmem", var("a"), var("adata"))],
                ),
                let_(
                    "gdata",
                    select(var("dirty").eq(k(1, 1)), var("adata"), var("pdata")),
                ),
                wr0a(
                    &dir_other,
                    var("a"),
                    select(var("wm").eq(k(1, 1)), k(2, state::I), k(2, state::S)),
                ),
                wr1(me("grant_valid"), k(1, 1)),
                wr1(me("grant_addr"), var("a")),
                wr1(me("grant_data"), var("gdata")),
                wr1(me("grant_m"), var("wm")),
                wr0a(
                    &dir_me,
                    var("a"),
                    select(var("wm").eq(k(1, 1)), k(2, state::M), k(2, state::S)),
                ),
                wr0("p_state", k(1, parent::READY)),
            ],
        );
    }
}

fn msi_design(name: &str, buggy: bool) -> Design {
    let mut b = DesignBuilder::new(name);
    build_child(&mut b, 0);
    build_child(&mut b, 1);
    build_parent(&mut b, buggy);
    // Channel discipline: each channel's consumer runs before its producer,
    // so producers can reuse a slot freed in the same cycle (via port-1
    // reads) while consumers take committed values at port 0.
    b.schedule([
        "c0_fill",
        "c1_fill",
        "p_confirm0",
        "p_confirm1",
        "c0_downgrade",
        "c1_downgrade",
        "p_start0",
        "p_start1",
        "c0_hit",
        "c1_hit",
        "c0_start_miss",
        "c1_start_miss",
        "c0_send_fill",
        "c1_send_fill",
    ]);
    b.build()
}

/// The healthy 2-core MSI system.
pub fn msi_system() -> Design {
    msi_design("msi", false)
}

/// The deadlocking variant of case study 1.
pub fn msi_system_buggy() -> Design {
    msi_design("msi-deadlock", true)
}
