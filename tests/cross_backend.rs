//! Workspace-level integration tests: every Table-1 design, every backend,
//! shared devices — the "completely separate toolchains that stay
//! cycle-accurate with respect to each other" property, end to end.

use cuttlesim::{CompileOptions, Dispatch, Sim};
use koika::check::check;
use koika::design::Design;
use koika::device::{Device, RegAccess, SimBackend};
use koika::interp::Interp;
use koika::testgen::SplitMix64;
use koika::tir::{RegId, TDesign};
use koika_designs::memdev::MagicMemory;
use koika_designs::{rv32, small};
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};

/// Drives `in*`/`input` stimulus registers with pseudorandom values.
struct Stimulus {
    regs: Vec<RegId>,
    rng: SplitMix64,
}

impl Device for Stimulus {
    fn tick(&mut self, _cycle: u64, regs: &mut dyn RegAccess) {
        for &r in &self.regs {
            regs.set64(r, self.rng.next_u64() & 0xffff);
        }
    }
}

fn stimulus_for(td: &TDesign) -> Option<Stimulus> {
    let regs: Vec<RegId> = td
        .syms
        .iter()
        .filter(|s| s.name == "input" || s.name.starts_with("in"))
        .filter(|s| s.len == 1 && s.name != "input_ready")
        .map(|s| s.base)
        .collect();
    if regs.is_empty() {
        None
    } else {
        Some(Stimulus {
            regs,
            rng: SplitMix64::new(0xBEEF),
        })
    }
}

fn compare_all_backends(design: &Design, cycles: u64) {
    let td = check(design).expect("typechecks");
    let mut interp = Interp::new(&td);
    let mut interp_dev = stimulus_for(&td);
    let mut vm = Sim::compile(&td).expect("compiles");
    let mut vm_dev = stimulus_for(&td);
    let mut vm_closure = Sim::compile(&td).expect("compiles");
    vm_closure.set_dispatch(Dispatch::Closure);
    let mut vmc_dev = stimulus_for(&td);
    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Dynamic).expect("compiles"));
    let mut rtl_dev = stimulus_for(&td);

    for cycle in 0..cycles {
        if let Some(d) = &mut interp_dev {
            d.tick(cycle, interp.as_reg_access());
        }
        interp.cycle();
        if let Some(d) = &mut vm_dev {
            d.tick(cycle, vm.as_reg_access());
        }
        vm.cycle();
        if let Some(d) = &mut vmc_dev {
            d.tick(cycle, vm_closure.as_reg_access());
        }
        vm_closure.cycle();
        if let Some(d) = &mut rtl_dev {
            d.tick(cycle, rtl.as_reg_access());
        }
        rtl.cycle();
        for r in 0..td.num_regs() {
            let reg = RegId(r as u32);
            let expect = interp.get64(reg);
            assert_eq!(vm.get64(reg), expect, "{}: cycle {cycle} reg {} (vm)", td.name, td.regs[r].name);
            assert_eq!(
                vm_closure.get64(reg),
                expect,
                "{}: cycle {cycle} reg {} (vm closure)",
                td.name,
                td.regs[r].name
            );
            assert_eq!(rtl.get64(reg), expect, "{}: cycle {cycle} reg {} (rtl)", td.name, td.regs[r].name);
        }
    }
}

#[test]
fn collatz_agrees_everywhere() {
    compare_all_backends(&small::collatz(), 500);
}

#[test]
fn fir_agrees_everywhere() {
    compare_all_backends(&small::fir(), 300);
}

#[test]
fn fft_agrees_everywhere() {
    compare_all_backends(&small::fft(), 200);
}

#[test]
fn rtl_core_runs_primes_to_completion() {
    // The RTL pipeline, too, runs whole programs correctly (Fig. 1's
    // baseline is a *working* simulator, just a slower one).
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(30);
    let golden = koika_designs::harness::golden_run(&program, 1_000_000);
    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Dynamic).unwrap());
    let mut mem = MagicMemory::new(
        &td,
        &["imem", "dmem"],
        &program,
        koika_designs::harness::MEM_WORDS,
    );
    let run = koika_designs::harness::run_until_retired(
        &mut rtl,
        &mut mem,
        &td,
        "",
        golden.retired,
        2_000_000,
    );
    assert!(run.completed);
    assert_eq!(mem.word(programs::RESULT_ADDR), programs::primes_expected(30));
}

#[test]
fn static_scheme_core_runs_primes_to_completion() {
    // The Bluespec-style scheme may schedule more conservatively, but the
    // core still computes the right answer (Fig. 2's baseline works).
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(30);
    let golden = koika_designs::harness::golden_run(&program, 1_000_000);
    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Static).unwrap());
    let mut mem = MagicMemory::new(
        &td,
        &["imem", "dmem"],
        &program,
        koika_designs::harness::MEM_WORDS,
    );
    let run = koika_designs::harness::run_until_retired(
        &mut rtl,
        &mut mem,
        &td,
        "",
        golden.retired,
        4_000_000,
    );
    assert!(run.completed, "static-scheme core did not finish: {run:?}");
    assert_eq!(mem.word(programs::RESULT_ADDR), programs::primes_expected(30));
}

#[test]
fn coverage_counts_are_dispatch_independent() {
    let td = check(&small::collatz()).unwrap();
    let opts = CompileOptions {
        coverage: true,
        ..CompileOptions::default()
    };
    let mut a = Sim::compile_with(&td, &opts).unwrap();
    let mut b = Sim::compile_with(&td, &opts).unwrap();
    b.set_dispatch(Dispatch::Closure);
    for _ in 0..500 {
        a.cycle();
        b.cycle();
    }
    assert_eq!(a.coverage_counts(), b.coverage_counts());
}

#[test]
fn snapshots_restore_full_determinism() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(20);
    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = MagicMemory::new(
        &td,
        &["imem", "dmem"],
        &program,
        koika_designs::harness::MEM_WORDS,
    );
    for cycle in 0..1000u64 {
        mem.tick(cycle, sim.as_reg_access());
        sim.cycle();
    }
    let snap = sim.save_state();
    let mem_snap = mem.clone();
    let run_on = |sim: &mut Sim, mem: &mut MagicMemory| -> Vec<u64> {
        for cycle in 1000..1500u64 {
            mem.tick(cycle, sim.as_reg_access());
            sim.cycle();
        }
        sim.reg_values()
    };
    let first = run_on(&mut sim, &mut mem);
    sim.restore_state(&snap);
    let mut mem2 = mem_snap;
    let second = run_on(&mut sim, &mut mem2);
    assert_eq!(first, second, "replay from a snapshot must be deterministic");
}

#[test]
fn wide_designs_run_on_the_interpreter_and_are_rejected_by_the_vm() {
    use koika::ast::*;
    use koika::design::DesignBuilder;
    let mut b = DesignBuilder::new("wide");
    b.reg("acc", 100, 1u64);
    b.rule(
        "rot",
        vec![wr0(
            "acc",
            rd0("acc").shl(k(8, 7)).or(rd0("acc").shr(k(8, 93))),
        )],
    );
    let td = check(&b.build()).unwrap();
    // The interpreter supports arbitrary widths...
    let mut interp = Interp::new(&td);
    for _ in 0..200 {
        interp.cycle();
    }
    let acc = interp.reg_bits(td.reg_id("acc"));
    assert_eq!(acc.width(), 100);
    // ... 200 rotations by 7 over a width-100 register: 1400 = 14 full
    // rotations exactly, so we are back at 1.
    assert_eq!(acc.to_u128(), 1);
    // ... while the fast backends report a clean error instead of truncating.
    assert!(Sim::compile(&td).is_err());
    assert!(rtl_compile(&td, Scheme::Dynamic).is_err());
}
