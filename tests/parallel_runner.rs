//! Integration tests of the crash-isolated parallel campaign runner: panic
//! containment end to end (a poisoned design panicking mid-cycle becomes a
//! triaged `panic` outcome, not a process abort), byte-identical reports
//! at any `--jobs` value, parallel/sequential agreement, and the
//! flaky-vs-hang watchdog split.

use std::process::Command;
use std::time::Duration;

use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika::obs::Observer;
use koika::fault::{
    run_campaign_parallel, CampaignConfig, FaultEngine, Outcome, ParallelFactories,
    ParallelOptions,
};
use koika::runner::RunnerConfig;
use koika::snapshot::{Snapshot, SnapshotError};
use koika::tir::{RegId, TDesign};
use koika::Interp;
use koika_designs::small;

fn collatz() -> TDesign {
    check(&small::collatz()).unwrap()
}

fn koika_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_koika_sim"))
}

// ---------------------------------------------------------------------------
// Panic containment.

/// A simulator that behaves like the interpreter until anything writes a
/// register from outside (an SEU injection), after which the next cycle
/// panics. The golden run never injects, so only campaign members are
/// poisoned — exactly the "design panics mid-cycle under fault" scenario.
struct PoisonedSim {
    inner: Interp,
    poisoned: bool,
}

impl RegAccess for PoisonedSim {
    fn get64(&self, reg: RegId) -> u64 {
        self.inner.get64(reg)
    }

    fn set64(&mut self, reg: RegId, value: u64) {
        self.poisoned = true;
        self.inner.set64(reg, value);
    }
}

impl SimBackend for PoisonedSim {
    fn cycle(&mut self) {
        assert!(!self.poisoned, "poisoned design: refusing to cycle");
        self.inner.cycle();
    }

    fn cycle_obs(&mut self, obs: &mut dyn Observer) {
        assert!(!self.poisoned, "poisoned design: refusing to cycle");
        self.inner.cycle_obs(obs);
    }

    fn cycle_count(&self) -> u64 {
        self.inner.cycle_count()
    }

    fn rules_fired(&self) -> u64 {
        self.inner.rules_fired()
    }

    fn snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }

    fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        self.inner.restore(snap)
    }

    fn as_reg_access(&mut self) -> &mut dyn RegAccess {
        self
    }
}

#[test]
fn mid_cycle_panics_are_triaged_not_fatal() {
    let td = collatz();
    let make_sim = || -> Result<Box<dyn SimBackend>, String> {
        Ok(Box::new(PoisonedSim {
            inner: Interp::new(&collatz()),
            poisoned: false,
        }))
    };
    let make_devices = || -> Vec<Box<dyn Device>> { Vec::new() };
    let env = ParallelFactories {
        td: &td,
        make_sim: &make_sim,
        make_devices: &make_devices,
    };
    let cfg = CampaignConfig {
        seed: 0xBAD,
        members: 8,
        cycles: 64,
        max_injections: 2,
        stall_cycles: 32,
    };
    let opts = ParallelOptions {
        runner: RunnerConfig::with_jobs(4),
        wall_budget: None,
    };

    let (report, stats) = run_campaign_parallel(&env, &cfg, &opts, None).unwrap();
    // Every member injects at least once, so every member's sim panics
    // mid-cycle — and every one is contained and classified, none aborts
    // the process or takes down its worker.
    assert_eq!(report.members.len(), 8);
    for m in &report.members {
        assert_eq!(m.outcome, Outcome::Panic, "member {}: {:?}", m.index, m);
        let detail = m.detail.as_deref().unwrap_or("");
        assert!(
            detail.contains("poisoned design"),
            "member {} detail should carry the panic message, got {detail:?}",
            m.index
        );
    }
    assert_eq!(stats.panics_contained, 8);
    assert!(report.summary().contains("panic         8"));
}

// ---------------------------------------------------------------------------
// Determinism across worker counts.

fn run_interp_campaign(
    td: &TDesign,
    cfg: &CampaignConfig,
    opts: &ParallelOptions,
) -> (koika::fault::CampaignReport, koika::runner::RunnerStats) {
    let td2 = td.clone();
    let make_sim = move || -> Result<Box<dyn SimBackend>, String> { Ok(Box::new(Interp::new(&td2))) };
    let make_devices = || -> Vec<Box<dyn Device>> { Vec::new() };
    let env = ParallelFactories {
        td,
        make_sim: &make_sim,
        make_devices: &make_devices,
    };
    run_campaign_parallel(&env, cfg, opts, None).unwrap()
}

#[test]
fn reports_are_identical_for_any_worker_count() {
    let td = collatz();
    let cfg = CampaignConfig {
        seed: 0xC0FFEE,
        members: 24,
        cycles: 64,
        max_injections: 3,
        stall_cycles: 32,
    };
    let run = |jobs: usize| {
        let opts = ParallelOptions {
            runner: RunnerConfig::with_jobs(jobs),
            wall_budget: None,
        };
        let (report, _) = run_interp_campaign(&td, &cfg, &opts);
        report.summary()
    };
    let seq = run(1);
    assert_eq!(seq, run(8), "--jobs 8 must match --jobs 1 byte for byte");
    assert_eq!(seq, run(3), "--jobs 3 must match --jobs 1 byte for byte");
}

#[test]
fn parallel_campaign_matches_the_sequential_engine() {
    let td = collatz();
    let cfg = CampaignConfig {
        seed: 0xFEED,
        members: 16,
        cycles: 64,
        max_injections: 3,
        stall_cycles: 32,
    };

    let mut make_sim = || -> Box<dyn SimBackend> { Box::new(Interp::new(&collatz())) };
    let mut make_devices = || -> Vec<Box<dyn Device>> { Vec::new() };
    let mut engine = FaultEngine {
        td: &td,
        make_sim: &mut make_sim,
        make_devices: &mut make_devices,
    };
    let sequential = engine.run_campaign(&cfg).unwrap();

    let opts = ParallelOptions {
        runner: RunnerConfig::with_jobs(4),
        wall_budget: None,
    };
    let (parallel, _) = run_interp_campaign(&td, &cfg, &opts);

    assert_eq!(sequential.summary(), parallel.summary());
}

// ---------------------------------------------------------------------------
// Flaky vs hang.

#[test]
fn wall_only_trips_classify_flaky_after_retries() {
    let td = collatz();
    let cfg = CampaignConfig {
        seed: 1,
        members: 3,
        cycles: 64,
        max_injections: 1,
        stall_cycles: 32,
    };
    let opts = ParallelOptions {
        runner: RunnerConfig {
            jobs: 2,
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..RunnerConfig::default()
        },
        // A zero wall budget trips on the very first observation, every
        // attempt: a pure wall-clock (machine-speed) failure.
        wall_budget: Some(Duration::ZERO),
    };
    let (report, stats) = run_interp_campaign(&td, &cfg, &opts);
    for m in &report.members {
        assert_eq!(
            m.outcome,
            Outcome::Flaky,
            "wall-only trips must classify flaky, not hang (member {})",
            m.index
        );
    }
    // Each member got its one retry before being declared flaky.
    assert_eq!(stats.retries, 3);
}

// ---------------------------------------------------------------------------
// CLI: stdout byte-identity and stderr routing.

#[test]
fn cli_campaign_stdout_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        koika_sim()
            .args([
                "collatz",
                "--campaign",
                "20",
                "--cycles",
                "64",
                "--stall-cycles",
                "32",
                "--jobs",
                jobs,
            ])
            .output()
            .unwrap()
    };
    let one = run("1");
    let eight = run("8");
    assert!(one.status.success());
    assert_eq!(
        one.stdout, eight.stdout,
        "campaign stdout must not depend on --jobs"
    );
    // Progress goes to stderr, leaving stdout machine-parseable.
    let err = String::from_utf8_lossy(&eight.stderr);
    assert!(err.contains("campaign: 20/20 done"), "stderr was: {err}");
    let out = String::from_utf8_lossy(&one.stdout);
    assert!(!out.contains("done"), "progress leaked to stdout: {out}");
}

#[test]
fn cli_fuzz_smoke_is_clean_and_deterministic() {
    let run = |jobs: &str| {
        koika_sim()
            .args(["--fuzz", "6", "--seed", "11", "--cycles", "24", "--jobs", jobs])
            .output()
            .unwrap()
    };
    let one = run("1");
    let four = run("4");
    assert!(
        one.status.success(),
        "fuzz run failed: {}",
        String::from_utf8_lossy(&one.stderr)
    );
    assert_eq!(one.stdout, four.stdout, "fuzz stdout must not depend on --jobs");
    let out = String::from_utf8_lossy(&one.stdout);
    assert!(out.contains("buckets      0"), "expected a clean run, got: {out}");
}

#[test]
fn cli_batch_one_is_byte_identical_to_scalar_everywhere() {
    // `--batch 1` routes through the batched engine but must be
    // undetectable from the outside: same campaign report, same fuzz
    // report, byte for byte.
    let campaign = ["collatz", "--campaign", "20", "--cycles", "64", "--stall-cycles", "32"];
    let scalar = koika_sim().args(campaign).output().unwrap();
    let batch1 = koika_sim().args(campaign).args(["--batch", "1"]).output().unwrap();
    assert!(scalar.status.success());
    assert!(
        batch1.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&batch1.stderr)
    );
    assert_eq!(scalar.stdout, batch1.stdout, "campaign stdout changed under --batch 1");

    let fuzz = ["--fuzz", "6", "--seed", "11", "--cycles", "24"];
    let scalar = koika_sim().args(fuzz).output().unwrap();
    let batch1 = koika_sim().args(fuzz).args(["--batch", "1"]).output().unwrap();
    assert!(scalar.status.success());
    assert!(batch1.status.success());
    assert_eq!(scalar.stdout, batch1.stdout, "fuzz stdout changed under --batch 1");
}

#[test]
fn cli_batch_composes_with_campaign_fuzz_and_jobs() {
    let campaign = ["collatz", "--campaign", "20", "--cycles", "64", "--stall-cycles", "32"];
    let sequential = koika_sim().args(campaign).output().unwrap();
    assert!(sequential.status.success());
    let wide = koika_sim()
        .args(campaign)
        .args(["--batch", "4", "--jobs", "3"])
        .output()
        .unwrap();
    assert!(
        wide.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&wide.stderr)
    );
    assert_eq!(
        sequential.stdout, wide.stdout,
        "campaign stdout must not depend on --batch or --jobs"
    );

    let fuzz = ["--fuzz", "6", "--seed", "11", "--cycles", "24"];
    let batched = koika_sim()
        .args(fuzz)
        .args(["--batch", "3", "--jobs", "2"])
        .output()
        .unwrap();
    assert!(
        batched.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&batched.stderr)
    );
    let out = String::from_utf8_lossy(&batched.stdout);
    assert!(out.contains("buckets      0"), "perturbed lanes found spurious bugs: {out}");
}

#[test]
fn cli_rejects_bad_batch_invocations() {
    // Zero lanes, non-cuttlesim backends, and per-instance observability
    // flags are all usage errors (exit 2), never panics.
    let cases: &[&[&str]] = &[
        &["collatz", "--batch", "0"],
        &["collatz", "--batch", "4", "--backend", "interp"],
        &["collatz", "--batch", "4", "--backend", "rtl"],
        &["collatz", "--batch", "4", "--vcd", "out.vcd", "--vcd-lane", "4"],
        &["collatz", "--vcd", "out.vcd", "--vcd-lane", "0"],
        &["collatz", "--batch", "4", "--trace", "8"],
        &["collatz", "--batch", "4", "--profile"],
        &["collatz", "--batch", "4", "--inject", "1:x:0"],
        &["collatz", "--batch", "4", "--replay", "x.log"],
    ];
    for case in cases {
        let out = koika_sim().args(*case).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{case:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.is_empty() && !err.contains("panicked"), "{case:?}: {err}");
    }
}

#[test]
fn cli_rejects_fuzz_with_a_design_and_zero_jobs() {
    let with_design = koika_sim().args(["collatz", "--fuzz", "4"]).output().unwrap();
    assert_eq!(with_design.status.code(), Some(2));

    let zero_jobs = koika_sim().args(["--fuzz", "4", "--jobs", "0"]).output().unwrap();
    assert_eq!(zero_jobs.status.code(), Some(2));

    let conflicting = koika_sim()
        .args(["--fuzz", "4", "--replay-corpus", "corpus"])
        .output()
        .unwrap();
    assert_eq!(conflicting.status.code(), Some(2));
}
