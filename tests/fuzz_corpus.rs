//! Corpus-replay regression suite: every checked-in `corpus/*.fuzz`
//! reproducer is re-run against all backends, plus negative tests of the
//! replay expectations themselves.

use std::path::Path;
use std::process::Command;

use cuttlesim_repro::fuzz::{replay_corpus_dir, run_case_dispatch, CorpusEntry, Expectation};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

#[test]
fn checked_in_corpus_replays_clean() {
    let results = replay_corpus_dir(corpus_dir()).expect("corpus dir must exist");
    assert!(
        !results.is_empty(),
        "corpus/ should contain at least one .fuzz reproducer"
    );
    for (path, outcome) in &results {
        if let Err(msg) = outcome {
            panic!("corpus entry {} failed to replay: {msg}", path.display());
        }
    }
}

#[test]
fn checked_in_corpus_agrees_under_native_dispatch() {
    // Satellite pin: every checked-in reproducer seed, re-run with the VM
    // axis restricted to the compiled-native dispatcher, still agrees
    // cycle-for-cycle with the reference interpreter at all six levels.
    // (`checked_in_corpus_replays_clean` covers native only implicitly —
    // and not at all on a toolchain-less host — so this pins it by name.)
    if !cuttlesim::toolchain_available() {
        eprintln!(
            "SKIP checked_in_corpus_agrees_under_native_dispatch: no rustc toolchain"
        );
        return;
    }
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "fuzz") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let entry = CorpusEntry::from_text(&text).unwrap();
        let case = run_case_dispatch(entry.seed, entry.cycles, Some(cuttlesim::Dispatch::Native));
        let native_findings: Vec<String> = case
            .findings
            .iter()
            .map(|f| f.key())
            .filter(|k| k.contains("native"))
            .collect();
        assert!(
            native_findings.is_empty(),
            "corpus entry {} diverges under native dispatch: {}",
            path.display(),
            native_findings.join(", ")
        );
        replayed += 1;
    }
    assert!(replayed >= 4, "expected the 4 checked-in entries, saw {replayed}");
}

#[test]
fn expect_finding_on_a_clean_seed_fails_replay() {
    // Take a pinned known-clean seed from the corpus and flip its
    // expectation: replay must now fail, and the message must nudge
    // toward flipping the entry back to `expect agree`.
    let text = std::fs::read_to_string(corpus_dir().join("agree-079f67de.fuzz")).unwrap();
    let clean = CorpusEntry::from_text(&text).unwrap();
    let lying = CorpusEntry {
        expect: Expectation::Finding("panic:O6:".to_string()),
        ..clean
    };
    let err = lying.replay().unwrap_err();
    assert!(err.contains("expect agree"), "unhelpful message: {err}");
}

#[test]
fn cli_replays_the_checked_in_corpus() {
    let out = Command::new(env!("CARGO_BIN_EXE_koika_sim"))
        .args(["--replay-corpus", corpus_dir().to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "corpus replay failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let entries = std::fs::read_dir(corpus_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "fuzz"))
        .count();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("corpus replay: {entries}/{entries} ok")),
        "got: {stdout}"
    );
}

#[test]
fn cli_corpus_replay_fails_on_a_bad_entry() {
    let dir = std::env::temp_dir().join("koika-bad-corpus-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("broken.fuzz"), "not a corpus file\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_koika_sim"))
        .args(["--replay-corpus", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED"), "got: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
