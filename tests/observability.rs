//! Integration tests for the unified observability layer: the same
//! [`koika::obs::Observer`] attached to all three backends must see the
//! same per-rule story, the export sinks must emit valid, stable JSON, and
//! the `koika-sim` CLI must expose all of it.
//!
//! Golden snapshots live in `tests/golden/`; regenerate with
//! `BLESS=1 cargo test --test observability`.

use cuttlesim::{CompileOptions, Sim};
use koika::check::check;
use koika::device::{Device, SimBackend};
use koika::obs::Metrics;
use koika::obs::PerfettoTrace;
use koika_designs::harness::MEM_WORDS;
use koika_designs::memdev::MagicMemory;
use koika_designs::{rv32, small};
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};
use std::process::Command;

// ---------------------------------------------------------------------------
// A minimal JSON validity checker (no serde in this workspace): recursive
// descent over the grammar, accepting any structurally well-formed document.

fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while i < s.len() && matches!(s[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(s: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(s, i);
    let Some(&c) = s.get(i) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => {
            let mut i = skip_ws(s, i + 1);
            if s.get(i) == Some(&b'}') {
                return Ok(i + 1);
            }
            loop {
                i = parse_string(s, skip_ws(s, i))?;
                i = skip_ws(s, i);
                if s.get(i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                i = parse_value(s, i + 1)?;
                i = skip_ws(s, i);
                match s.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok(i + 1),
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        b'[' => {
            let mut i = skip_ws(s, i + 1);
            if s.get(i) == Some(&b']') {
                return Ok(i + 1);
            }
            loop {
                i = parse_value(s, i)?;
                i = skip_ws(s, i);
                match s.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok(i + 1),
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        b'"' => parse_string(s, i),
        b't' => expect_lit(s, i, b"true"),
        b'f' => expect_lit(s, i, b"false"),
        b'n' => expect_lit(s, i, b"null"),
        b'-' | b'0'..=b'9' => {
            let mut i = i;
            if s[i] == b'-' {
                i += 1;
            }
            let start = i;
            while i < s.len() && matches!(s[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                i += 1;
            }
            if i == start {
                return Err(format!("bad number at byte {i}"));
            }
            Ok(i)
        }
        c => Err(format!("unexpected byte {:?} at {i}", c as char)),
    }
}

fn parse_string(s: &[u8], i: usize) -> Result<usize, String> {
    if s.get(i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    let mut i = i + 1;
    while let Some(&c) = s.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    Err("unterminated string".into())
}

fn expect_lit(s: &[u8], i: usize, lit: &[u8]) -> Result<usize, String> {
    if s.len() >= i + lit.len() && &s[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn assert_valid_json(text: &str) {
    let bytes = text.as_bytes();
    let end = parse_value(bytes, 0).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
    assert_eq!(
        skip_ws(bytes, end),
        bytes.len(),
        "trailing garbage after JSON document"
    );
}

// ---------------------------------------------------------------------------
// Cross-backend agreement.

fn collatz_metrics_on<S: SimBackend>(sim: &mut S, cycles: u64) -> Metrics {
    let td = check(&small::collatz()).unwrap();
    let mut m = Metrics::for_design(&td);
    for _ in 0..cycles {
        sim.cycle_obs(&mut m);
    }
    m
}

#[test]
fn same_observer_on_all_three_backends_sees_identical_commit_counts() {
    let td = check(&small::collatz()).unwrap();
    const N: u64 = 500;

    let mut interp = koika::Interp::new(&td);
    let m_interp = collatz_metrics_on(&mut interp, N);

    let mut vm = Sim::compile(&td).unwrap();
    let m_vm = collatz_metrics_on(&mut vm, N);

    let mut rtl = RtlSim::new(rtl_compile(&td, Scheme::Dynamic).unwrap());
    let m_rtl = collatz_metrics_on(&mut rtl, N);

    assert_eq!(
        m_interp.commits_per_rule(),
        m_vm.commits_per_rule(),
        "interp vs cuttlesim per-rule commits on collatz"
    );
    assert_eq!(
        m_interp.commits_per_rule(),
        m_rtl.commits_per_rule(),
        "interp vs rtl per-rule commits on collatz"
    );
    assert_eq!(m_interp.cycles(), N);
    assert_eq!(m_vm.cycles(), N);
    assert_eq!(m_rtl.cycles(), N);
    assert!(m_interp.total_fired() > 0, "collatz must make progress");
}

#[test]
fn interp_and_cuttlesim_agree_per_rule_on_rv32i() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(20);
    const N: u64 = 5_000;

    let mut m_interp = Metrics::for_design(&td);
    {
        let mut sim = koika::Interp::new(&td);
        let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
        let mut devs: Vec<&mut dyn Device> = vec![&mut mem];
        sim.run_obs(N, &mut devs, &mut m_interp);
    }

    let mut m_vm = Metrics::for_design(&td);
    {
        let mut sim = Sim::compile_with(&td, &CompileOptions::default()).unwrap();
        let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
        let mut devs: Vec<&mut dyn Device> = vec![&mut mem];
        sim.run_obs(N, &mut devs, &mut m_vm);
    }

    assert_eq!(
        m_interp.commits_per_rule(),
        m_vm.commits_per_rule(),
        "per-rule commit counts must match between interp and cuttlesim on rv32i;\n\
         interp: {:?}\ncuttlesim: {:?}",
        m_interp.commits_per_rule(),
        m_vm.commits_per_rule(),
    );
    assert!(m_interp.total_fired() > N, "core must be doing real work");
}

#[test]
fn observation_does_not_change_simulation_results() {
    // The zero-cost claim's semantic half: cycle_obs computes exactly what
    // cycle computes.
    let td = check(&small::fft()).unwrap();
    let mut plain = Sim::compile(&td).unwrap();
    let mut observed = Sim::compile(&td).unwrap();
    let mut m = Metrics::for_design(&td);
    for _ in 0..300 {
        plain.cycle();
        observed.cycle_obs(&mut m);
    }
    assert_eq!(plain.reg_values(), observed.reg_values());
    assert_eq!(plain.fired_per_rule(), observed.fired_per_rule());
    assert_eq!(m.commits_per_rule(), plain.fired_per_rule().to_vec());
}

// ---------------------------------------------------------------------------
// Golden snapshots (deterministic output forms only).

fn golden_check(path: &str, actual: &str) {
    let full = format!("{}/tests/golden/{path}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&full, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("missing golden file {full}: {e} (run with BLESS=1)"));
    assert_eq!(
        actual, expected,
        "{path} drifted from its golden snapshot; run with BLESS=1 to regenerate"
    );
}

#[test]
fn collatz_metrics_json_matches_golden_snapshot() {
    let td = check(&small::collatz()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let m = collatz_metrics_on(&mut sim, 64);
    let json = m.to_json(false);
    assert_valid_json(&json);
    golden_check("collatz_metrics.json", &json);
}

#[test]
fn collatz_perfetto_trace_matches_golden_snapshot() {
    let td = check(&small::collatz()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let mut t = PerfettoTrace::for_design(&td);
    for _ in 0..16 {
        sim.cycle_obs(&mut t);
    }
    let json = t.to_json();
    assert_valid_json(&json);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\": \"X\""), "commits must appear as slices");
    golden_check("collatz_perfetto.json", &json);
}

#[test]
fn prometheus_dump_has_all_metric_families() {
    let td = check(&small::collatz()).unwrap();
    let mut sim = Sim::compile(&td).unwrap();
    let m = collatz_metrics_on(&mut sim, 32);
    let prom = m.to_prometheus();
    for family in [
        "koika_cycles_total",
        "koika_rule_commits_total",
        "koika_rule_failures_total",
        "koika_reg_writes_total",
        "koika_cycles_per_second",
    ] {
        assert!(prom.contains(&format!("# TYPE {family}")), "missing {family}");
    }
    assert!(prom.contains("koika_cycles_total{design=\"collatz\"} 32"));
}

// ---------------------------------------------------------------------------
// CLI surface.

fn koika_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_koika_sim"))
}

#[test]
fn cli_help_exits_zero_with_full_usage() {
    let out = koika_sim().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Usage: koika-sim"));
    for flag in ["--metrics-json", "--perfetto", "--watch", "--backend"] {
        assert!(text.contains(flag), "--help must document {flag}");
    }
}

#[test]
fn cli_rejects_unknown_flags_with_nonzero_exit_and_hint() {
    let out = koika_sim().args(["collatz", "--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option --frobnicate"));
    assert!(err.contains("--help"), "error must point at --help");
}

#[test]
fn cli_metrics_json_emits_valid_json_with_throughput() {
    let dir = std::env::temp_dir().join(format!("koika_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rv32i_metrics.json");
    let out = koika_sim()
        .args(["rv32i", "--cycles", "2000", "--metrics-json"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).unwrap();
    assert_valid_json(&json);
    assert!(json.contains("\"cycles\": 2000"));
    assert!(json.contains("\"fired\""));
    assert!(json.contains("\"failed\""));
    assert!(json.contains("\"cycles_per_sec\""));
    assert!(json.contains("\"name\": \"execute\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_perfetto_emits_structurally_valid_trace() {
    let dir = std::env::temp_dir().join(format!("koika_perf_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("collatz.perfetto.json");
    let out = koika_sim()
        .args(["collatz", "--cycles", "50", "--perfetto"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).unwrap();
    assert_valid_json(&json);
    for needle in ["\"traceEvents\"", "\"ph\": \"M\"", "\"ph\": \"X\"", "\"tid\""] {
        assert!(json.contains(needle), "trace missing {needle}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_watch_prints_register_changes() {
    let out = koika_sim()
        .args(["collatz", "--cycles", "8", "--watch", "x"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // collatz starts at 27; first step is 3*27+1 = 82 = 0x52.
    assert!(text.contains("watch x: cycle 0: 0x1b -> 0x52"), "got:\n{text}");
    assert!(out.status.success());
}
