//! Integration tests of the debugging/observability tooling on a real
//! design: gprof-style profiling, VCD waveforms, and the bypass design-
//! exploration variant — the "whole ecosystem of software debugging" the
//! paper's conclusion claims for rule-based designs.

use cuttlesim::{ProfileReport, Sim};
use koika::check::check;
use koika::device::{Device, SimBackend};
use koika::vcd::VcdRecorder;
use koika_designs::harness::{golden_run, run_until_retired, MEM_WORDS};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;

#[test]
fn profiling_shows_execute_and_decode_dominating_core_work() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(40);
    let golden = golden_run(&program, 2_000_000);
    let mut sim = Sim::compile(&td).unwrap();
    sim.enable_profiling();
    let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", golden.retired, 5_000_000);
    assert!(run.completed);

    let report = ProfileReport::collect(&sim);
    let hottest = report.rows()[0].rule.clone();
    assert!(
        hottest == "execute" || hottest == "decode",
        "expected the big stages to dominate; profile:\n{report}"
    );
    // Every rule was invoked; the profile accounts for real work.
    assert!(report.total_insns() > 100_000);
    for row in report.rows() {
        assert!(row.fired + row.failed > 0, "rule {} never ran", row.rule);
    }
}

#[test]
fn vcd_capture_of_the_core_records_pc_progress() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::nops(20);
    let mut sim = Sim::compile(&td).unwrap();
    let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
    let mut vcd = VcdRecorder::new(&td, &[td.reg_id("pc"), td.reg_id("retired")]);
    for cycle in 0..40u64 {
        vcd.sample(cycle, &sim);
        mem.tick(cycle, sim.as_reg_access());
        sim.cycle();
    }
    let dump = vcd.finish(40);
    assert!(dump.contains("$var wire 32 ! pc $end"));
    // The PC advanced many times; each change is one timestamped entry.
    let changes = dump.lines().filter(|l| l.ends_with(" !")).count();
    assert!(changes > 15, "expected many pc changes, got {changes}:\n{dump}");
}

#[test]
fn profiling_quantifies_early_exit_on_stalled_decode() {
    // On the x0-bug core, decode fails every other cycle at the scoreboard
    // check — its average executed-instruction count must sit well below
    // its body length (the early-exit effect the paper's §2.3 is about).
    let td = check(&rv32::rv32i_x0bug()).unwrap();
    let program = programs::nops(100);
    let mut sim = Sim::compile(&td).unwrap();
    sim.enable_profiling();
    let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
    let run = run_until_retired(&mut sim, &mut mem, &td, "", 100, 10_000);
    assert!(run.completed);
    let report = ProfileReport::collect(&sim);
    let rows = report.rows();
    let decode = rows.iter().find(|r| r.rule == "decode").unwrap();
    assert!(decode.failed >= 90, "decode should stall constantly");
    // Decode does real work (field extraction, hazard computation) before
    // the scoreboard check, so the saving is moderate — but it must be
    // visible: a stall skips the register-file read, scoreboard claim, and
    // the whole d2e enqueue.
    assert!(
        decode.avg_insns() < decode.body_len as f64 * 0.9,
        "stalling decode should exit early: avg {:.1} of {} instructions",
        decode.avg_insns(),
        decode.body_len
    );
}
