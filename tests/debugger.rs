//! Time-travel debugger integration suite.
//!
//! The central claim of `koika::debug` is backend invariance: the same
//! scripted session — breakpoints, watchpoints, reverse execution across
//! checkpoint boundaries, waveform dumps — must produce a byte-identical
//! transcript on the reference interpreter, the cuttlesim VM under every
//! dispatch engine, the levelized RTL simulator, and the batched SoA
//! engine's focused lane. These tests pin that down with `diff`-grade
//! comparisons, plus the `--debug-on-divergence` flow against the
//! checked-in fuzz corpus.

use std::path::{Path, PathBuf};
use std::process::Command;

use cuttlesim_repro::fuzz::{scan_divergence, CorpusEntry};

fn koika_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_koika_sim"))
}

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// A scratch dir per test so relative `dump-vcd` / `snapshot` paths keep
/// transcripts byte-identical across backends.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("koika-debugger-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one scripted session; returns (transcript, vcd bytes if dumped).
fn run_session(dir: &Path, design: &str, backend_flags: &[&str], cycles: &str, script: &str) -> (String, Option<Vec<u8>>) {
    let tag = backend_flags.join("_").replace('-', "");
    let script_path = dir.join(format!("script-{tag}.kdb"));
    std::fs::write(&script_path, script).unwrap();
    let out = koika_sim()
        .current_dir(dir)
        .arg(design)
        .args(backend_flags)
        .args(["--cycles", cycles])
        .args(["--debug-script", script_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{design} {backend_flags:?} exited {:?}:\n{}{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let transcript = String::from_utf8(out.stdout).unwrap();
    let vcd = std::fs::read(dir.join("out.vcd")).ok();
    let _ = std::fs::remove_file(dir.join("out.vcd"));
    (transcript, vcd)
}

/// The backend matrix every session is compared across. The batched
/// engine is appended only when the design fits its ≤64-bit lane model.
/// The native dispatcher joins the matrix only when a rustc toolchain is
/// present — the skip is announced on stderr, never silent.
fn backend_matrix(with_batch: bool) -> Vec<Vec<&'static str>> {
    let mut m = vec![
        vec!["--backend", "interp"],
        vec!["--backend", "cuttlesim", "--dispatch", "match"],
        vec!["--backend", "cuttlesim", "--dispatch", "closure"],
        vec!["--backend", "cuttlesim", "--dispatch", "tac"],
    ];
    if cuttlesim::toolchain_available() {
        m.push(vec!["--backend", "cuttlesim", "--dispatch", "native"]);
    } else {
        eprintln!("SKIP: no rustc toolchain; native dispatch row excluded from the debugger matrix");
    }
    m.push(vec!["--backend", "rtl"]);
    if with_batch {
        m.push(vec!["--batch", "3"]);
    }
    m
}

fn assert_transcripts_identical(design: &str, script: &str, cycles: &str, with_batch: bool) -> String {
    let dir = scratch(design);
    let mut reference: Option<(String, Option<Vec<u8>>)> = None;
    for flags in backend_matrix(with_batch) {
        let (transcript, vcd) = run_session(&dir, design, &flags, cycles, script);
        match &reference {
            None => reference = Some((transcript, vcd)),
            Some((want_t, want_v)) => {
                assert_eq!(
                    want_t, &transcript,
                    "{design}: transcript under {flags:?} differs from interp"
                );
                assert_eq!(
                    want_v, &vcd,
                    "{design}: dumped VCD under {flags:?} differs from interp"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    reference.unwrap().0
}

#[test]
fn collatz_session_is_byte_identical_across_all_backends() {
    // Breakpoint on a rule commit, watchpoints (on-change and on-value),
    // reverse-step far enough to cross two checkpoint boundaries
    // (interval is 8 on collatz), and a waveform dump at the paused
    // cycle — the acceptance-criteria script.
    let script = "\
break rule rlB commit
continue
delete 1
watch x
continue
delete 2
watch st == 0x1
continue
delete 3
run-to 20
reverse-step 13
print x
print steps
diff
last 4
step 2
reverse-continue
dump-vcd out.vcd
snapshot out.ksnap
quit
";
    let transcript = assert_transcripts_identical("collatz", script, "40", true);
    // Spot-check the session actually exercised what it claims to.
    assert!(transcript.contains("breakpoint 1: rule 'rlB' commit"), "{transcript}");
    assert!(transcript.contains("watchpoint 2: reg 'x'"), "{transcript}");
    assert!(transcript.contains("watchpoint 3: reg 'st'"), "{transcript}");
    assert!(transcript.contains("stopped at cycle 7"), "{transcript}");
    assert!(transcript.contains("vcd written to out.vcd"), "{transcript}");
    assert!(transcript.contains("snapshot written to out.ksnap"), "{transcript}");
}

#[test]
fn rv32i_session_is_byte_identical_across_all_backends() {
    // The rv32i core runs against the magic-memory device, so reverse
    // execution must also checkpoint and restore device state (the
    // instruction/data memory) — a store-then-reverse would otherwise
    // replay divergently. Interval is 67 here; reverse-step 90 from 150
    // crosses two checkpoint boundaries.
    let script = "\
break rule writeback commit
continue
delete 1
watch retired
continue
delete 2
run-to 150
reverse-step 90
print pc
print retired
diff
step 3
last 5
dump-vcd out.vcd
quit
";
    let transcript = assert_transcripts_identical("rv32i", script, "200", true);
    assert!(transcript.contains("breakpoint 1: rule 'writeback' commit"), "{transcript}");
    assert!(transcript.contains("watchpoint 2: reg 'retired'"), "{transcript}");
    assert!(transcript.contains("stopped at cycle 60"), "{transcript}");
}

#[test]
fn batch_focus_lane_switches_and_stays_consistent() {
    // Lanes of a plain batch are identical instances, so a session that
    // refocuses mid-run must agree with the scalar run after the switch.
    let dir = scratch("focus");
    let script = "\
run-to 12
focus-lane 2
print x
step 4
print x
quit
";
    let (batch, _) = run_session(&dir, "collatz", &["--batch", "3"], "40", script);
    assert!(batch.contains("focused on lane 2 of 3"), "{batch}");
    // The same cycles on the interpreter produce the same register values.
    let script_scalar = "\
run-to 12
print x
step 4
print x
quit
";
    let (scalar, _) = run_session(&dir, "collatz", &["--backend", "interp"], "40", script_scalar);
    let vals = |t: &str| -> Vec<String> {
        t.lines().filter(|l| l.starts_with("x = ")).map(str::to_string).collect()
    };
    assert_eq!(vals(&batch), vals(&scalar), "batch: {batch}\nscalar: {scalar}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn vcd_is_byte_identical_across_dispatchers_and_batch_lane() {
    // Satellite pin: `--vcd` under every dispatch engine and under
    // `--batch` (recording the selected lane) produces byte-identical
    // waveforms for identical instances.
    let dir = scratch("vcd");
    let mut matrix: Vec<Vec<&str>> = vec![
        vec!["--dispatch", "match"],
        vec!["--dispatch", "closure"],
        vec!["--dispatch", "tac"],
    ];
    if cuttlesim::toolchain_available() {
        matrix.push(vec!["--dispatch", "native"]);
    } else {
        eprintln!("SKIP: no rustc toolchain; native dispatch row excluded from the VCD matrix");
    }
    matrix.push(vec!["--batch", "3"]);
    matrix.push(vec!["--batch", "3", "--vcd-lane", "1"]);
    let mut reference: Option<Vec<u8>> = None;
    for (i, flags) in matrix.iter().enumerate() {
        let vcd_path = dir.join(format!("wave-{i}.vcd"));
        let out = koika_sim()
            .args(["collatz", "--cycles", "60", "--vcd", vcd_path.to_str().unwrap()])
            .args(flags)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "collatz {flags:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let bytes = std::fs::read(&vcd_path).unwrap();
        match &reference {
            None => reference = Some(bytes),
            Some(want) => assert_eq!(want, &bytes, "VCD under {flags:?} differs"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_trip_while_debugging_is_not_a_hang() {
    // A cycle-budget trip during user-driven stepping is reported in-band
    // at the prompt; the process still exits 0 (a paused debugger is not
    // a hang), and reverse execution keeps working afterwards.
    let dir = scratch("watchdog");
    let script = "\
run-to 30
step
reverse-step 4
step 2
quit
";
    let script_path = dir.join("script.kdb");
    std::fs::write(&script_path, script).unwrap();
    let out = koika_sim()
        .args(["collatz", "--cycles", "100", "--max-cycles", "25"])
        .args(["--debug-script", script_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "watchdog trip under the debugger must not exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let t = String::from_utf8(out.stdout).unwrap();
    assert!(t.contains("watchdog: cycle budget of 25 exhausted at cycle 25"), "{t}");
    assert!(t.contains("stopped at cycle 25"), "{t}");
    // Replays during reverse-step never observe the watchdog.
    assert!(t.contains("stopped at cycle 22"), "{t}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debug_on_divergence_lands_on_the_exact_first_divergent_cycle() {
    // Independently recompute where the checked-in reproducer's first
    // divergence is, then assert the CLI attaches the debugger exactly
    // there with both register files printed side by side.
    let entry_text =
        std::fs::read_to_string(corpus_dir().join("agree-e78a9e9c.fuzz")).unwrap();
    let entry = CorpusEntry::from_text(&entry_text).unwrap();
    let div = scan_divergence(entry.seed, entry.cycles)
        .expect("scan must build all backends")
        .expect("the checked-in reproducer must diverge somewhere");
    assert_eq!(div.backend, "rtl-static");

    let dir = scratch("divergence");
    let script_path = dir.join("script.kdb");
    std::fs::write(&script_path, "print r0\nreverse-step\nprint r0\nquit\n").unwrap();
    let out = koika_sim()
        .args(["--replay-corpus", corpus_dir().to_str().unwrap()])
        .arg("--debug-on-divergence")
        .args(["--debug-script", script_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let t = String::from_utf8(out.stdout).unwrap();
    assert!(
        t.contains(&format!(
            "divergence: seed {:#x}, backend {} first differs from interp after cycle {}",
            div.seed, div.backend, div.cycle
        )),
        "{t}"
    );
    assert!(t.contains("<-- differs"), "side-by-side table missing: {t}");
    // The auto preamble runs to the first divergent cycle boundary.
    assert!(t.contains(&format!("(kdb) run-to {}", div.cycle + 1)), "{t}");
    assert!(t.contains(&format!("stopped at cycle {}", div.cycle + 1)), "{t}");
    // And the session is attached to the *diverging* backend: the focused
    // register holds the diverged value, not the interpreter's.
    let (reg_idx, _) = div
        .interp_regs
        .iter()
        .zip(&div.backend_regs)
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, _)| (i, ()))
        .unwrap();
    assert_eq!(reg_idx, 0, "reproducer diverges on r0");
    assert!(
        t.contains(&format!("r0 = {:#x}", div.backend_regs[0])),
        "debugger not attached to diverging backend: {t}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn debugger_flag_conflicts_are_usage_errors() {
    let cases: &[&[&str]] = &[
        &["collatz", "--debug", "--vcd", "x.vcd"],
        &["collatz", "--debug", "--trace", "8"],
        &["collatz", "--debug", "--campaign", "4"],
        &["collatz", "--debug", "--metrics-json", "m.json"],
        &["--fuzz", "2", "--debug"],
        &["collatz", "--debug-on-divergence"],
    ];
    for case in cases {
        let out = koika_sim().args(*case).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{case:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
