//! Integration tests for the multi-tenant simulation session server:
//! per-session fault isolation, admission control, snapshot-backed
//! eviction, watchdog budgets that exclude evicted time, batch-lane
//! packing equivalence, and protocol robustness — everything the server
//! promises a tenant, pinned over a real TCP socket.

use koika::check::check;
use koika::device::{Device, RegAccess};
use koika::tir::TDesign;
use koika_designs::small;
use koika_server::json::Json;
use koika_server::{spawn, DesignProvider, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Serves `collatz` plus a `boom` alias of the same design whose device
/// panics on its fifth tick — the poisoned tenant of the isolation tests.
struct TestProvider {
    td: Arc<TDesign>,
}

impl TestProvider {
    fn new() -> TestProvider {
        TestProvider {
            td: Arc::new(check(&small::collatz()).unwrap()),
        }
    }
}

/// Panics once the session passes cycle 5. Carries a counter through
/// save/load so the panic survives engine checkouts and rehydration.
struct BoomDevice {
    ticks: u64,
}

impl Device for BoomDevice {
    fn tick(&mut self, cycle: u64, _regs: &mut dyn RegAccess) {
        self.ticks += 1;
        assert!(cycle < 5, "boom device detonated at cycle {cycle}");
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.ticks.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let bytes: [u8; 8] = state.try_into().map_err(|_| "bad blob".to_string())?;
        self.ticks = u64::from_le_bytes(bytes);
        Ok(())
    }
}

impl DesignProvider for TestProvider {
    fn design(&self, name: &str) -> Option<Arc<TDesign>> {
        match name {
            "collatz" | "boom" => Some(Arc::clone(&self.td)),
            _ => None,
        }
    }

    fn devices(&self, name: &str, _td: &TDesign) -> Vec<Box<dyn Device + Send>> {
        match name {
            "boom" => vec![Box::new(BoomDevice { ticks: 0 })],
            _ => Vec::new(),
        }
    }
}

fn test_server(cfg: ServerConfig) -> ServerHandle {
    spawn(cfg, Arc::new(TestProvider::new()), "127.0.0.1:0").unwrap()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        spool_dir: std::env::temp_dir().join(format!(
            "koika-server-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )),
        ..ServerConfig::default()
    }
}

/// One line-oriented protocol connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    /// Sends one request line, returns the raw reply line.
    fn send_raw(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(reply.ends_with('\n'), "reply must be newline-framed: {reply:?}");
        reply.trim_end().to_string()
    }

    /// Sends one request line, returns the parsed reply.
    fn send(&mut self, line: &str) -> Json {
        let raw = self.send_raw(line);
        Json::parse(&raw).unwrap_or_else(|e| panic!("unparseable reply {raw:?}: {e}"))
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn err_kind(v: &Json) -> &str {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "expected an error: {v:?}");
    v.get("error").and_then(Json::as_str).unwrap()
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

// ---------------------------------------------------------------------------
// Fault isolation
// ---------------------------------------------------------------------------

#[test]
fn poisoned_session_kills_only_its_own_session() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);

    let healthy = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    let boom = u(&c.send(r#"{"op":"create","design":"boom","tenant":"mallory"}"#), "session");

    // The poisoned session panics mid-step; the panic is contained and
    // only that session is torn down.
    let r = c.send(&format!(r#"{{"op":"step","session":{boom},"n":50}}"#));
    assert_eq!(err_kind(&r), "panic");
    let r = c.send(&format!(r#"{{"op":"step","session":{boom},"n":1}}"#));
    assert_eq!(err_kind(&r), "unknown-session", "poisoned session must be gone");

    // The sibling session and the server itself are unaffected.
    let r = c.send(&format!(r#"{{"op":"step","session":{healthy},"n":10}}"#));
    assert!(ok(&r), "healthy session must survive a sibling's panic: {r:?}");
    assert_eq!(u(&r, "cycles"), 10);
    let r = c.send(r#"{"op":"create","design":"collatz"}"#);
    assert!(ok(&r), "server must keep admitting sessions: {r:?}");

    // The containment is visible in the poisoned tenant's counters only.
    let m = c.send(r#"{"op":"metrics"}"#);
    let tenants = m.get("metrics").unwrap().get("tenants").unwrap();
    let mallory = tenants.get("mallory").unwrap();
    assert_eq!(u(mallory, "panics_contained"), 1);
    assert_eq!(u(mallory, "sessions_closed"), 1);
    let default = tenants.get("default").unwrap();
    assert_eq!(u(default, "panics_contained"), 0);

    handle.join();
}

#[test]
fn panic_during_create_is_contained_and_admits_no_session() {
    // A device that panics in `tick` detonates during steps, not create —
    // so drive the create-side containment with a provider whose device
    // constructor itself panics.
    struct EagerBoom {
        td: Arc<TDesign>,
    }
    impl DesignProvider for EagerBoom {
        fn design(&self, name: &str) -> Option<Arc<TDesign>> {
            (name == "eager").then(|| Arc::clone(&self.td))
        }
        fn devices(&self, _name: &str, _td: &TDesign) -> Vec<Box<dyn Device + Send>> {
            panic!("device constructor detonated");
        }
    }
    let handle = spawn(
        test_config(),
        Arc::new(EagerBoom {
            td: Arc::new(check(&small::collatz()).unwrap()),
        }),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut c = Client::connect(&handle);
    let r = c.send(r#"{"op":"create","design":"eager"}"#);
    assert_eq!(err_kind(&r), "panic");
    // The server is still alive and the failed create left no session.
    let m = c.send(r#"{"op":"metrics"}"#);
    assert_eq!(u(m.get("metrics").unwrap(), "sessions_active"), 0);
    handle.join();
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[test]
fn full_session_table_sheds_creates_with_busy() {
    let cfg = ServerConfig {
        max_sessions: 3,
        ..test_config()
    };
    let handle = test_server(cfg);
    let mut c = Client::connect(&handle);

    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session"));
    }
    let r = c.send(r#"{"op":"create","design":"collatz"}"#);
    assert_eq!(err_kind(&r), "busy", "table is full: {r:?}");

    // Closing one frees a slot; the shed create was never half-admitted.
    let r = c.send(&format!(r#"{{"op":"close","session":{}}}"#, ids[0]));
    assert!(ok(&r));
    let r = c.send(r#"{"op":"create","design":"collatz"}"#);
    assert!(ok(&r), "freed slot must be reusable: {r:?}");
    let r = c.send(&format!(r#"{{"op":"step","session":{}}}"#, ids[0]));
    assert_eq!(err_kind(&r), "unknown-session");

    let m = c.send(r#"{"op":"metrics"}"#);
    let default = m.get("metrics").unwrap().get("tenants").unwrap().get("default").unwrap();
    assert_eq!(u(default, "busy_rejections"), 1);

    handle.join();
}

// ---------------------------------------------------------------------------
// Eviction and rehydration
// ---------------------------------------------------------------------------

#[test]
fn evicted_session_rehydrates_byte_identical() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":20}}"#))));

    let before = c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#));
    let hex_before = before.get("ksnap").and_then(Json::as_str).unwrap().to_string();

    let r = c.send(&format!(r#"{{"op":"evict","session":{id}}}"#));
    assert!(ok(&r), "{r:?}");
    assert_eq!(r.get("evicted").and_then(Json::as_bool), Some(true));

    // Any touch transparently rehydrates; the state is byte-identical.
    let after = c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#));
    let hex_after = after.get("ksnap").and_then(Json::as_str).unwrap();
    assert_eq!(hex_before, hex_after, "rehydrated state must be byte-identical");

    // And the session keeps running from where it left off.
    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":5}}"#));
    assert!(ok(&r));
    assert_eq!(u(&r, "cycles"), 25);

    let m = c.send(r#"{"op":"metrics"}"#);
    let default = m.get("metrics").unwrap().get("tenants").unwrap().get("default").unwrap();
    assert_eq!(u(default, "evictions"), 1);
    assert_eq!(u(default, "rehydrations"), 1);
    handle.join();
}

#[test]
fn wall_budget_excludes_time_spent_evicted() {
    // A session with a 250 ms wall budget is evicted and left cold for
    // longer than its entire budget; because the watchdog is paused while
    // the session is off-core, the next step must still be inside budget.
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let r = c.send(r#"{"op":"create","design":"collatz","watchdog":{"wall_ms":250}}"#);
    let id = u(&r, "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":10}}"#))));
    assert!(ok(&c.send(&format!(r#"{{"op":"evict","session":{id}}}"#))));

    std::thread::sleep(Duration::from_millis(400));

    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":10}}"#));
    assert!(
        ok(&r),
        "evicted time must not burn the wall budget, got {r:?}"
    );
    assert_eq!(u(&r, "cycles"), 20);
    handle.join();
}

// ---------------------------------------------------------------------------
// Watchdog trips
// ---------------------------------------------------------------------------

#[test]
fn cycle_budget_trip_is_deterministic_and_survivable() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let r = c.send(r#"{"op":"create","design":"collatz","watchdog":{"max_cycles":10}}"#);
    let id = u(&r, "session");

    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":100}}"#));
    assert_eq!(err_kind(&r), "watchdog");
    assert_eq!(r.get("kind").and_then(Json::as_str), Some("cycle-budget"));
    assert_eq!(u(&r, "cycle"), 10);

    // Deterministic trips commit partial progress and keep the session
    // resident — a tenant can inspect the wedged state.
    let r = c.send(&format!(r#"{{"op":"query-regs","session":{id}}}"#));
    assert!(ok(&r), "tripped session must stay queryable: {r:?}");
    assert_eq!(u(&r, "cycles"), 10);

    let m = c.send(r#"{"op":"metrics"}"#);
    let default = m.get("metrics").unwrap().get("tenants").unwrap().get("default").unwrap();
    assert_eq!(u(default, "watchdog_trips"), 1);
    handle.join();
}

// ---------------------------------------------------------------------------
// Injections and tracing
// ---------------------------------------------------------------------------

#[test]
fn injections_are_validated_and_change_the_trajectory() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let clean = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    let upset = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");

    // Bad injections are rejected with typed errors.
    let r = c.send(&format!(
        r#"{{"op":"inject","session":{upset},"cycle":3,"reg":"nosuch","bit":0}}"#
    ));
    assert!(!ok(&r), "{r:?}");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{upset},"n":5}}"#))));
    let r = c.send(&format!(
        r#"{{"op":"inject","session":{upset},"cycle":2,"reg":"x","bit":1}}"#
    ));
    assert!(!ok(&r), "past-cycle injection must be rejected: {r:?}");

    // A valid future injection queues, applies, and perturbs the run.
    let r = c.send(&format!(
        r#"{{"op":"inject","session":{upset},"cycle":7,"reg":"x","bit":1}}"#
    ));
    assert!(ok(&r), "{r:?}");
    assert_eq!(u(&r, "pending"), 1);

    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{clean},"n":12}}"#))));
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{upset},"n":7}}"#))));
    let clean_regs = c.send(&format!(r#"{{"op":"query-regs","session":{clean},"regs":["x"]}}"#));
    let upset_regs = c.send(&format!(r#"{{"op":"query-regs","session":{upset},"regs":["x"]}}"#));
    assert_ne!(
        clean_regs.get("regs").unwrap().get("x"),
        upset_regs.get("regs").unwrap().get("x"),
        "a bit flip on the working register must perturb the trajectory"
    );
    handle.join();
}

#[test]
fn stream_trace_returns_committed_rules_per_cycle() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    let r = c.send(&format!(r#"{{"op":"stream-trace","session":{id},"n":3}}"#));
    assert!(ok(&r), "{r:?}");
    let Some(Json::Arr(events)) = r.get("events") else {
        panic!("stream-trace must return events: {r:?}");
    };
    assert!(!events.is_empty(), "collatz commits rules every cycle");
    for ev in events {
        assert!(u(ev, "cycle") < 3);
        assert!(ev.get("rule").and_then(Json::as_str).is_some());
    }
    assert_eq!(r.get("truncated").and_then(Json::as_bool), Some(false));
    handle.join();
}

// ---------------------------------------------------------------------------
// Batch packing
// ---------------------------------------------------------------------------

#[test]
fn packed_steps_match_the_scalar_reference() {
    // Reference: one session stepped scalar (nothing to pack with).
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":40}}"#))));
    let reference = c.send(&format!(r#"{{"op":"query-regs","session":{id}}}"#));
    handle.join();

    // Packed: a dispatch window long enough that concurrent same-shape
    // steps land in one round and pack into batch lanes.
    let cfg = ServerConfig {
        batch_min: 2,
        batch_window: Duration::from_millis(200),
        ..test_config()
    };
    let handle = test_server(cfg);
    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(&handle)).collect();
    let ids: Vec<u64> = clients
        .iter_mut()
        .map(|c| u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session"))
        .collect();
    let replies: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(&ids)
            .map(|(c, id)| {
                s.spawn(move || c.send(&format!(r#"{{"op":"step","session":{id},"n":40}}"#)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &replies {
        assert!(ok(r), "{r:?}");
        assert_eq!(u(r, "cycles"), 40);
    }
    let mut c = Client::connect(&handle);
    for id in &ids {
        let regs = c.send(&format!(r#"{{"op":"query-regs","session":{id}}}"#));
        assert_eq!(
            regs.get("regs"),
            reference.get("regs"),
            "packed lanes must be bit-identical to the scalar path"
        );
    }
    let m = c.send(r#"{"op":"metrics"}"#);
    let default = m.get("metrics").unwrap().get("tenants").unwrap().get("default").unwrap();
    assert!(
        u(default, "packed_steps") > 0,
        "concurrent same-shape steps inside the window must pack: {m:?}"
    );
    handle.join();
}

// ---------------------------------------------------------------------------
// Protocol robustness
// ---------------------------------------------------------------------------

#[test]
fn protocol_errors_never_take_the_server_down() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);

    assert_eq!(err_kind(&c.send("this is not json")), "protocol");
    assert_eq!(err_kind(&c.send(r#"{"no":"op"}"#)), "protocol");
    assert_eq!(err_kind(&c.send(r#"{"op":"frobnicate"}"#)), "unknown-op");
    assert_eq!(err_kind(&c.send(r#"{"op":"step","session":999}"#)), "unknown-session");
    assert_eq!(err_kind(&c.send(r#"{"op":"step"}"#)), "protocol");
    assert_eq!(err_kind(&c.send(r#"{"op":"create","design":"nosuch"}"#)), "unknown-design");
    assert_eq!(
        err_kind(&c.send(r#"{"op":"create","design":"collatz","backend":"rtl"}"#)),
        "protocol",
        "the server offers interp and cuttlesim engines only"
    );
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert_eq!(
        err_kind(&c.send(&format!(r#"{{"op":"step","session":{id},"n":999999999}}"#))),
        "protocol"
    );

    // After all of that abuse the server still does real work.
    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":4}}"#));
    assert!(ok(&r), "{r:?}");
    assert!(ok(&c.send(r#"{"op":"ping"}"#)));

    let m = c.send(r#"{"op":"metrics"}"#);
    let metrics = m.get("metrics").unwrap();
    // Unparseable line, op-less object, unknown op. (Typed op-level
    // errors such as unknown-session are not protocol errors.)
    assert_eq!(u(metrics, "protocol_errors"), 3);
    handle.join();
}

#[test]
fn restore_rejects_corrupt_and_mismatched_snapshots_as_bad_snapshot() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":10}}"#))));
    let good = c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#));
    let hex = good.get("ksnap").and_then(Json::as_str).unwrap().to_string();

    // Not hex at all: a protocol error, not a snapshot error.
    let r = c.send(&format!(r#"{{"op":"restore","session":{id},"ksnap":"zz"}}"#));
    assert_eq!(err_kind(&r), "protocol");

    // Valid hex, garbage bytes: typed bad-snapshot.
    let r = c.send(&format!(r#"{{"op":"restore","session":{id},"ksnap":"deadbeef"}}"#));
    assert_eq!(err_kind(&r), "bad-snapshot");

    // A truncated but otherwise genuine snapshot: rejected before any
    // state is touched.
    let cut = &hex[..hex.len() - 8];
    let r = c.send(&format!(r#"{{"op":"restore","session":{id},"ksnap":"{cut}"}}"#));
    assert_eq!(err_kind(&r), "bad-snapshot", "{r:?}");

    // After all rejections the session still holds its exact pre-restore
    // state and keeps stepping.
    let after = c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#));
    assert_eq!(
        after.get("ksnap").and_then(Json::as_str),
        Some(hex.as_str()),
        "a rejected restore must not perturb the session"
    );
    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":5}}"#));
    assert!(ok(&r), "{r:?}");
    assert_eq!(u(&r, "cycles"), 15);

    // And the good snapshot still restores.
    let r = c.send(&format!(r#"{{"op":"restore","session":{id},"ksnap":"{hex}"}}"#));
    assert!(ok(&r), "{r:?}");
    assert_eq!(u(&r, "cycles"), 10);
    handle.join();
}

#[test]
fn metrics_are_tracked_per_tenant() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let a = u(&c.send(r#"{"op":"create","design":"collatz","tenant":"alice"}"#), "session");
    let b = u(&c.send(r#"{"op":"create","design":"collatz","tenant":"bob"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{a},"n":8}}"#))));
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{b},"n":3}}"#))));
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{b},"n":3}}"#))));

    let m = c.send(r#"{"op":"metrics"}"#);
    let tenants = m.get("metrics").unwrap().get("tenants").unwrap();
    let alice = tenants.get("alice").unwrap();
    let bob = tenants.get("bob").unwrap();
    assert_eq!((u(alice, "steps"), u(alice, "cycles")), (1, 8));
    assert_eq!((u(bob, "steps"), u(bob, "cycles")), (2, 6));

    // The Prometheus exposition carries the same counters with labels.
    let p = c.send(r#"{"op":"metrics","format":"prometheus"}"#);
    let text = p.get("prometheus").and_then(Json::as_str).unwrap();
    assert!(text.contains("koika_server_cycles_total{tenant=\"alice\"} 8"));
    assert!(text.contains("koika_server_cycles_total{tenant=\"bob\"} 6"));
    handle.join();
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    let handle = test_server(test_config());
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":5}}"#))));
    let r = c.send(r#"{"op":"shutdown"}"#);
    assert_eq!(r.get("draining").and_then(Json::as_bool), Some(true));
    let stats = handle.wait();
    assert!(stats.requests >= 3);
    assert_eq!(stats.sessions_spilled, 1, "live sessions spill on drain");
    assert_eq!(stats.panics_contained, 0);
}
