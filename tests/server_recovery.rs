//! Integration tests for durable crash recovery: write-ahead journaling,
//! deterministic replay after an in-process `kill -9` ([`ServerHandle::
//! abort`]), torn-tail truncation, read-only degradation under injected
//! disk faults, and the `req_id` idempotency window — all over a real TCP
//! socket against a real state directory.

use koika::check::check;
use koika::device::{Device, RegAccess};
use koika::tir::TDesign;
use koika_designs::small;
use koika_server::journal::{
    encode_frame, parse_journal_bytes, JournalOp, JournalRecord, WatchdogSpec, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
use koika_server::json::Json;
use koika_server::{spawn, DesignProvider, IoChaos, ServerConfig, ServerHandle};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Harness (mirrors tests/server.rs)
// ---------------------------------------------------------------------------

/// Serves `collatz` plus a `boom` alias whose device panics past cycle 5.
struct TestProvider {
    td: Arc<TDesign>,
}

impl TestProvider {
    fn new() -> TestProvider {
        TestProvider {
            td: Arc::new(check(&small::collatz()).unwrap()),
        }
    }
}

struct BoomDevice {
    ticks: u64,
}

impl Device for BoomDevice {
    fn tick(&mut self, cycle: u64, _regs: &mut dyn RegAccess) {
        self.ticks += 1;
        assert!(cycle < 5, "boom device detonated at cycle {cycle}");
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.ticks.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, state: &[u8]) -> Result<(), String> {
        let bytes: [u8; 8] = state.try_into().map_err(|_| "bad blob".to_string())?;
        self.ticks = u64::from_le_bytes(bytes);
        Ok(())
    }
}

impl DesignProvider for TestProvider {
    fn design(&self, name: &str) -> Option<Arc<TDesign>> {
        match name {
            "collatz" | "boom" => Some(Arc::clone(&self.td)),
            _ => None,
        }
    }

    fn devices(&self, name: &str, _td: &TDesign) -> Vec<Box<dyn Device + Send>> {
        match name {
            "boom" => vec![Box::new(BoomDevice { ticks: 0 })],
            _ => Vec::new(),
        }
    }
}

/// A unique, empty state directory for one test.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "koika-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        state_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn durable_server(cfg: ServerConfig) -> ServerHandle {
    spawn(cfg, Arc::new(TestProvider::new()), "127.0.0.1:0").unwrap()
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send_raw(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    fn send(&mut self, line: &str) -> Json {
        let raw = self.send_raw(line);
        Json::parse(&raw).unwrap_or_else(|e| panic!("unparseable reply {raw:?}: {e}"))
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn err_kind(v: &Json) -> &str {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "expected an error: {v:?}");
    v.get("error").and_then(Json::as_str).unwrap()
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

fn snapshot_hex(c: &mut Client, id: u64) -> String {
    let r = c.send(&format!(r#"{{"op":"snapshot","session":{id}}}"#));
    assert!(ok(&r), "{r:?}");
    r.get("ksnap").and_then(Json::as_str).unwrap().to_string()
}

fn tenant_counter(c: &mut Client, tenant: &str, key: &str) -> u64 {
    let m = c.send(r#"{"op":"metrics"}"#);
    let t = m
        .get("metrics")
        .and_then(|m| m.get("tenants"))
        .and_then(|t| t.get(tenant))
        .unwrap_or_else(|| panic!("no tenant {tenant}: {m:?}"));
    u(t, key)
}

// ---------------------------------------------------------------------------
// Kill -9 and recover
// ---------------------------------------------------------------------------

#[test]
fn abort_and_restart_recovers_sessions_byte_identical() {
    let dir = state_dir("kill9");
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);

    // Three sessions exercising the whole journal vocabulary: a plain
    // stepped one, one with a pending injection, and one that checkpoints
    // via eviction and then grows a replay tail on top.
    let plain = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{plain},"n":17}}"#))));

    let injected = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{injected},"n":5}}"#))));
    assert!(ok(&c.send(&format!(
        r#"{{"op":"inject","session":{injected},"cycle":9,"reg":"x","bit":1}}"#
    ))));
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{injected},"n":10}}"#))));

    let tailed = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{tailed},"n":20}}"#))));
    assert!(ok(&c.send(&format!(r#"{{"op":"evict","session":{tailed}}}"#))));
    // Touching it rehydrates; these steps live only in the journal tail.
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{tailed},"n":15}}"#))));

    let want_plain = snapshot_hex(&mut c, plain);
    let want_injected = snapshot_hex(&mut c, injected);
    let want_tailed = snapshot_hex(&mut c, tailed);

    // kill -9: no drain, no spilling — recovery gets exactly what the
    // write-ahead discipline put on disk.
    handle.abort();

    let handle = durable_server(durable_config(&dir));
    assert_eq!(handle.recovered_sessions(), 3, "all three sessions must come back");
    assert_eq!(handle.lost_sessions(), 0);
    let mut c = Client::connect(&handle);

    assert_eq!(snapshot_hex(&mut c, plain), want_plain);
    assert_eq!(snapshot_hex(&mut c, injected), want_injected);
    assert_eq!(snapshot_hex(&mut c, tailed), want_tailed);

    // Recovered sessions are fully live: they keep stepping and the
    // injection queue survives (the injected bit flip fired pre-crash).
    let r = c.send(&format!(r#"{{"op":"step","session":{tailed},"n":5}}"#));
    assert!(ok(&r), "{r:?}");
    assert_eq!(u(&r, "cycles"), 40);

    assert_eq!(tenant_counter(&mut c, "default", "recovered_sessions"), 3);

    // Session ids allocated after recovery never collide with recovered
    // ones.
    let fresh = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(fresh > tailed, "fresh id {fresh} must not reuse recovered ids");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn closed_sessions_stay_closed_across_restart() {
    let dir = state_dir("close");
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":8}}"#))));
    assert!(ok(&c.send(&format!(r#"{{"op":"close","session":{id}}}"#))));
    handle.abort();

    let handle = durable_server(durable_config(&dir));
    assert_eq!(handle.recovered_sessions(), 0, "closed sessions must not resurrect");
    let mut c = Client::connect(&handle);
    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":1}}"#));
    assert_eq!(err_kind(&r), "unknown-session");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_truncated_not_fatal() {
    let dir = state_dir("torn");
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":12}}"#))));
    let want = snapshot_hex(&mut c, id);
    handle.abort();

    // Simulate a crash mid-append: garbage bytes past the durable prefix.
    let journal = dir.join(format!("session-{id}.kjrn"));
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    std::fs::write(&journal, &bytes).unwrap();

    let handle = durable_server(durable_config(&dir));
    assert_eq!(handle.recovered_sessions(), 1);
    let mut c = Client::connect(&handle);
    assert_eq!(snapshot_hex(&mut c, id), want, "torn tail must not corrupt recovery");
    assert_eq!(tenant_counter(&mut c, "default", "journal_truncations"), 1);
    // The truncation is durable: the file no longer carries the garbage.
    assert_eq!(std::fs::read(&journal).unwrap().len(), bytes.len() - 3);
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_header_quarantines_only_that_session() {
    let dir = state_dir("corrupt");
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);
    let dead = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    let alive = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{alive},"n":9}}"#))));
    let want = snapshot_hex(&mut c, alive);
    handle.abort();

    // Smash the first session's journal header beyond parsing.
    std::fs::write(dir.join(format!("session-{dead}.kjrn")), b"garbage").unwrap();

    let handle = durable_server(durable_config(&dir));
    assert_eq!(handle.recovered_sessions(), 1, "the intact session must recover");
    assert_eq!(handle.lost_sessions(), 1, "the smashed one is lost, not fatal");
    let mut c = Client::connect(&handle);
    assert_eq!(snapshot_hex(&mut c, alive), want);
    assert_eq!(err_kind(&c.send(&format!(r#"{{"op":"step","session":{dead}}}"#))), "unknown-session");
    assert!(
        dir.join(format!("session-{dead}.kjrn.corrupt")).exists(),
        "unrecoverable journals are quarantined for forensics"
    );
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Idempotent re-submission (req_id)
// ---------------------------------------------------------------------------

#[test]
fn req_id_resubmission_is_at_most_once_even_across_a_crash() {
    let dir = state_dir("reqid");
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz","req_id":100}"#), "session");

    let first = c.send_raw(&format!(r#"{{"op":"step","session":{id},"n":6,"req_id":7}}"#));
    // Same req_id, even with a different n: cached reply, no re-execution.
    let again = c.send_raw(&format!(r#"{{"op":"step","session":{id},"n":6,"req_id":7}}"#));
    assert_eq!(first, again, "re-submission must return the cached reply verbatim");
    let r = c.send(&format!(r#"{{"op":"query-regs","session":{id}}}"#));
    assert_eq!(u(&r, "cycles"), 6, "the duplicate step must not run twice");

    // The create is idempotent too — same req_id, same session.
    let r = c.send(r#"{"op":"create","design":"collatz","req_id":100}"#);
    assert_eq!(u(&r, "session"), id);

    handle.abort();
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);
    // The window is rebuilt from the journal: the same re-submissions
    // still answer from cache instead of mutating.
    let recovered = c.send_raw(&format!(r#"{{"op":"step","session":{id},"n":6,"req_id":7}}"#));
    assert_eq!(first, recovered, "the recovered window must return the same reply");
    let r = c.send(&format!(r#"{{"op":"query-regs","session":{id}}}"#));
    assert_eq!(u(&r, "cycles"), 6);
    let r = c.send(r#"{"op":"create","design":"collatz","req_id":100}"#);
    assert_eq!(u(&r, "session"), id, "create req_id must survive the crash");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Read-only degradation under injected disk faults
// ---------------------------------------------------------------------------

#[test]
fn disk_faults_degrade_to_read_only_and_heal() {
    let dir = state_dir("degrade");
    let chaos = Arc::new(IoChaos::new(0xC0FFEE, 0));
    let cfg = ServerConfig {
        chaos: Some(Arc::clone(&chaos)),
        ..durable_config(&dir)
    };
    let handle = durable_server(cfg);
    let mut c = Client::connect(&handle);
    let id = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{id},"n":4}}"#))));

    // Every durable write now fails: the next mutation degrades the
    // server, and it stays read-only while the "disk" is down.
    chaos.set_every(1);
    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":4}}"#));
    assert_eq!(err_kind(&r), "read-only");
    let r = c.send(&format!(r#"{{"op":"inject","session":{id},"cycle":99,"reg":"x","bit":0}}"#));
    assert_eq!(err_kind(&r), "read-only");
    let r = c.send(r#"{"op":"create","design":"collatz"}"#);
    assert_eq!(err_kind(&r), "read-only");

    // Reads still work — degradation is not an outage.
    let r = c.send(&format!(r#"{{"op":"query-regs","session":{id}}}"#));
    assert!(ok(&r), "reads must survive read-only mode: {r:?}");
    assert_eq!(u(&r, "cycles"), 4, "the failed step must not have half-applied");

    // Disk recovers: the next mutating op probes, heals, and proceeds.
    chaos.set_every(0);
    let r = c.send(&format!(r#"{{"op":"step","session":{id},"n":4}}"#));
    assert!(ok(&r), "server must heal once writes land again: {r:?}");
    assert_eq!(u(&r, "cycles"), 8);
    assert!(
        chaos.counts().iter().map(|(_, n)| n).sum::<u64>() > 0,
        "the injected faults must be accounted: {:?}",
        chaos.counts()
    );
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Panic blast radius during replay
// ---------------------------------------------------------------------------

#[test]
fn replayed_panic_tears_down_only_its_own_session() {
    let dir = state_dir("replay-boom");
    let handle = durable_server(durable_config(&dir));
    let mut c = Client::connect(&handle);
    let healthy = u(&c.send(r#"{"op":"create","design":"collatz"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{healthy},"n":11}}"#))));
    let want = snapshot_hex(&mut c, healthy);
    // The boom session steps only up to cycle 4 — fine at run time, but
    // its journal now holds steps that will detonate when replayed... if
    // the device were to count differently. It does not: replay is
    // deterministic, so this session recovers too. To create a journal
    // that genuinely panics on replay, step the boom session right up to
    // the edge and then corrupt nothing — instead create it *fresh* with
    // steps past the boom threshold journaled but rolled back. The
    // simplest honest scenario: journal a boom session that legitimately
    // crossed cycle 5 under a wall-less run — impossible live (the panic
    // would have torn it down and deleted the journal). So instead pin
    // the invariant we actually promise: a session whose replay panics is
    // torn down alone.
    let boom = u(&c.send(r#"{"op":"create","design":"boom","tenant":"mallory"}"#), "session");
    assert!(ok(&c.send(&format!(r#"{{"op":"step","session":{boom},"n":3}}"#))));
    handle.abort();

    // Forge a journal tail that steps the boom session past its fuse:
    // replay will detonate inside the contained replay loop.
    let path = dir.join(format!("session-{boom}.kjrn"));
    let mut bytes = std::fs::read(&path).unwrap();
    let parsed = parse_journal_bytes(&bytes).unwrap();
    let next_seq = parsed.records.last().unwrap().seq + 1;
    bytes.extend_from_slice(&encode_frame(&JournalRecord {
        seq: next_seq,
        req_id: None,
        op: JournalOp::Step { n: 10 },
    }));
    std::fs::write(&path, &bytes).unwrap();

    let handle = durable_server(durable_config(&dir));
    assert_eq!(handle.recovered_sessions(), 1, "only the healthy session survives");
    let mut c = Client::connect(&handle);
    assert_eq!(snapshot_hex(&mut c, healthy), want);
    let r = c.send(&format!(r#"{{"op":"step","session":{boom}}}"#));
    assert_eq!(err_kind(&r), "unknown-session", "the detonated session is gone");
    assert!(!path.exists(), "a torn-down session's journal is deleted");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Journal parsing properties
// ---------------------------------------------------------------------------

/// Builds a valid journal byte string from a generated op list.
fn build_journal(session_id: u64, ops: &[JournalOp]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&JOURNAL_MAGIC);
    bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&session_id.to_le_bytes());
    for (i, op) in ops.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(&JournalRecord {
            seq: i as u64,
            req_id: (i % 3 == 0).then_some(i as u64 + 1000),
            op: op.clone(),
        }));
    }
    bytes
}

/// Derives `len` ops from a seed (the proptest shim has no collection
/// strategies, so the vector is expanded from a splitmix64 stream).
fn ops_from_seed(seed: u64, len: usize) -> Vec<JournalOp> {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len).map(|_| arbitrary_op(next() as u8, next() % 10_000)).collect()
}

fn arbitrary_op(pick: u8, x: u64) -> JournalOp {
    match pick % 6 {
        0 => JournalOp::Create {
            design: format!("d{x}"),
            tenant: "t".into(),
            backend: koika_server::BackendKind::Interp,
            watchdog: WatchdogSpec {
                max_cycles: x.is_multiple_of(2).then_some(x),
                stall_cycles: None,
                wall_ms: Some(x % 5000),
            },
        },
        1 => JournalOp::Step { n: x },
        2 => JournalOp::Inject {
            cycle: x,
            reg: (x % 7) as u32,
            bit: (x % 64) as u32,
        },
        3 => JournalOp::Restore {
            ksnap: x.to_le_bytes().repeat((x % 9) as usize),
        },
        4 => JournalOp::Checkpoint {
            cycles: x,
            stalled: x % 3,
            pending: vec![(x, (x % 5) as u32, (x % 64) as u32)],
        },
        _ => JournalOp::Rollback { of_seq: x },
    }
}

proptest! {
    /// Truncating a valid journal at *every* byte offset either parses
    /// cleanly to a strict record prefix or reports a typed header error —
    /// never a panic, never a partially decoded record.
    #[test]
    fn journal_truncated_at_any_offset_never_yields_partial_ops(
        session_id in any::<u64>(),
        seed in any::<u64>(),
        len in 0usize..8,
    ) {
        let ops = ops_from_seed(seed, len);
        let bytes = build_journal(session_id, &ops);
        let full = parse_journal_bytes(&bytes).unwrap();
        prop_assert_eq!(full.records.len(), ops.len());
        prop_assert!(!full.truncated);

        for cut in 0..bytes.len() {
            match parse_journal_bytes(&bytes[..cut]) {
                Err(_) => prop_assert!(cut < 16, "only a short header may be a hard error"),
                Ok(p) => {
                    prop_assert_eq!(p.session_id, session_id);
                    prop_assert!(p.durable_len as usize <= cut);
                    prop_assert!(p.records.len() <= ops.len());
                    // The durable prefix is bit-exact: every surviving
                    // record matches the original at its position.
                    for (i, rec) in p.records.iter().enumerate() {
                        prop_assert_eq!(&rec.op, &ops[i]);
                        prop_assert_eq!(rec.seq, i as u64);
                    }
                    // A mid-record cut is flagged as torn; a cut exactly
                    // on a record boundary is indistinguishable from a
                    // shorter valid journal and is not.
                    prop_assert_eq!(p.truncated, (p.durable_len as usize) != cut);
                }
            }
        }
    }

    /// Flipping any single byte of a journal never panics the parser, and
    /// every record it does return decodes to one of the originals or is
    /// cut off at the corruption.
    #[test]
    fn journal_survives_arbitrary_single_byte_corruption(
        seed in any::<u64>(),
        len in 1usize..6,
        victim in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let ops = ops_from_seed(seed, len);
        let mut bytes = build_journal(42, &ops);
        let idx = victim % bytes.len();
        bytes[idx] ^= flip;
        // Must not panic; a corrupted header is a typed error, anything
        // else parses to some durable prefix.
        let _ = parse_journal_bytes(&bytes);
    }
}
