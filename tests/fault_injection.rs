//! Integration tests for the resilience layer: snapshot/restore across all
//! three backends, seeded fault-injection campaigns with golden-run
//! classification, watchdog enforcement, and deterministic replay — at the
//! library level and through the `koika-sim` CLI.
//!
//! Golden snapshots live in `tests/golden/`; regenerate with
//! `BLESS=1 cargo test --test fault_injection`.

use cuttlesim::Sim;
use koika::ast::{guard, k, rd0, wr0};
use koika::check::check;
use koika::design::DesignBuilder;
use koika::device::{Device, SimBackend};
use koika::fault::{
    replay_campaign, run_watchdogged, CampaignConfig, FaultEngine, Injection, Outcome, ReplayLog,
    Watchdog,
};
use koika::snapshot::{Snapshot, SnapshotError};
use koika::tir::TDesign;
use koika_designs::harness::MEM_WORDS;
use koika_designs::memdev::MagicMemory;
use koika_designs::{rv32, small};
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};
use std::process::Command;

// ---------------------------------------------------------------------------
// Helpers.

fn collatz() -> TDesign {
    check(&small::collatz()).unwrap()
}

type BackendFactory = Box<dyn Fn(&TDesign) -> Box<dyn SimBackend>>;
type SimFactory = Box<dyn FnMut() -> Box<dyn SimBackend>>;
type DeviceFactory = Box<dyn FnMut() -> Vec<Box<dyn Device>>>;

/// One factory per backend, so every test below can sweep all three.
fn backends() -> Vec<(&'static str, BackendFactory)> {
    vec![
        (
            "interp",
            Box::new(|td: &TDesign| Box::new(koika::Interp::new(td)) as Box<dyn SimBackend>),
        ),
        (
            "cuttlesim",
            Box::new(|td: &TDesign| Box::new(Sim::compile(td).unwrap()) as Box<dyn SimBackend>),
        ),
        (
            "rtl",
            Box::new(|td: &TDesign| {
                Box::new(RtlSim::new(rtl_compile(td, Scheme::Dynamic).unwrap()))
                    as Box<dyn SimBackend>
            }),
        ),
    ]
}

fn run_plain(sim: &mut dyn SimBackend, cycles: u64) {
    for _ in 0..cycles {
        sim.cycle();
    }
}

fn golden_check(path: &str, actual: &str) {
    let full = format!("{}/tests/golden/{path}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&full, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("missing golden file {full}: {e} (run with BLESS=1)"));
    assert_eq!(
        actual, expected,
        "{path} drifted from its golden snapshot; run with BLESS=1 to regenerate"
    );
}

fn koika_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_koika_sim"))
}

// ---------------------------------------------------------------------------
// Snapshot / restore.

#[test]
fn snapshot_restore_round_trips_on_all_three_backends() {
    let td = collatz();
    for (name, make) in backends() {
        // Reference: 64 uninterrupted cycles.
        let mut straight = make(&td);
        run_plain(&mut *straight, 64);
        let want = straight.snapshot();

        // Same run, interrupted at cycle 40 by a snapshot/restore cycle
        // into a *fresh* simulator.
        let mut first = make(&td);
        run_plain(&mut *first, 40);
        let snap = first.snapshot();
        assert_eq!(snap.cycles, 40);
        let mut resumed = make(&td);
        resumed.restore(&snap).unwrap();
        run_plain(&mut *resumed, 24);
        let got = resumed.snapshot();

        assert_eq!(got, want, "snapshot round-trip diverged on {name}");
        assert_eq!(got.to_bytes(), want.to_bytes(), "binary form differs on {name}");
    }
}

#[test]
fn snapshots_are_portable_across_backends() {
    let td = collatz();
    // Capture interpreter state mid-run...
    let mut interp = koika::Interp::new(&td);
    run_plain(&mut interp, 32);
    let snap = interp.snapshot();
    run_plain(&mut interp, 32);
    let want = interp.snapshot();

    // ...and resume it on every other backend: identical final state and
    // commit counters.
    for (name, make) in backends() {
        let mut sim = make(&td);
        sim.restore(&snap).unwrap();
        run_plain(&mut *sim, 32);
        assert_eq!(
            sim.snapshot(),
            want,
            "interp state resumed on {name} must match interp's own continuation"
        );
    }
}

#[test]
fn restore_rejects_mismatched_designs_and_corrupt_bytes() {
    let td = collatz();
    let other = check(&small::fir()).unwrap();
    let mut sim = koika::Interp::new(&td);
    run_plain(&mut sim, 8);
    let snap = sim.snapshot();

    let mut wrong = koika::Interp::new(&other);
    assert!(matches!(
        wrong.restore(&snap),
        Err(SnapshotError::DesignMismatch { .. })
    ));

    let mut bytes = snap.to_bytes();
    bytes.truncate(bytes.len() - 3);
    assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotError::Truncated));
}

// ---------------------------------------------------------------------------
// Campaigns and classification.

fn collatz_engine_parts() -> (TDesign, SimFactory, DeviceFactory) {
    let td = collatz();
    let td2 = td.clone();
    (
        td,
        Box::new(move || Box::new(Sim::compile(&td2).unwrap()) as Box<dyn SimBackend>),
        Box::new(Vec::new),
    )
}

#[test]
fn collatz_campaign_summary_matches_golden_and_is_reproducible() {
    let (td, mut make_sim, mut make_devices) = collatz_engine_parts();
    let cfg = CampaignConfig {
        seed: 0xC0FFEE,
        members: 40,
        cycles: 64,
        max_injections: 3,
        stall_cycles: 32,
    };
    let mut engine = FaultEngine {
        td: &td,
        make_sim: &mut *make_sim,
        make_devices: &mut *make_devices,
    };
    let a = engine.run_campaign(&cfg).unwrap();
    let b = engine.run_campaign(&cfg).unwrap();
    assert_eq!(a.summary(), b.summary(), "campaign must be deterministic");
    assert_eq!(a.counts().iter().sum::<usize>(), 40, "every member classified");
    golden_check("collatz_campaign.txt", &a.summary());
}

#[test]
fn campaigns_agree_across_backends_on_collatz() {
    // The engine is backend-agnostic and all backends are cycle-accurate,
    // so the same seed must classify identically everywhere.
    let td = collatz();
    let cfg = CampaignConfig {
        seed: 99,
        members: 12,
        cycles: 48,
        max_injections: 2,
        stall_cycles: 24,
    };
    let mut summaries = Vec::new();
    for (name, make) in backends() {
        let td2 = td.clone();
        let mut make_sim = move || make(&td2);
        let mut make_devices = Vec::new;
        let mut engine = FaultEngine {
            td: &td,
            make_sim: &mut make_sim,
            make_devices: &mut make_devices,
        };
        let report = engine.run_campaign(&cfg).unwrap();
        summaries.push((name, report.summary()));
    }
    let (first_name, first) = &summaries[0];
    for (name, summary) in &summaries[1..] {
        assert_eq!(
            summary, first,
            "campaign classification differs between {first_name} and {name}"
        );
    }
}

#[test]
fn watchdog_aborts_non_terminating_design_on_every_backend() {
    // A design whose only rule is guarded on a bit that is never set: it
    // commits nothing, ever. Without a watchdog this "runs" forever.
    let mut b = DesignBuilder::new("stuck");
    b.reg("go", 1, 0u64);
    b.reg("n", 8, 0u64);
    b.rule(
        "inc",
        vec![guard(rd0("go").eq(k(1, 1))), wr0("n", rd0("n").add(k(8, 1)))],
    );
    let td = check(&b.build()).unwrap();
    for (name, make) in backends() {
        let mut sim = make(&td);
        let mut devices: Vec<Box<dyn Device>> = Vec::new();
        let trip = run_watchdogged(
            &mut *sim,
            &mut devices,
            1_000_000,
            &[],
            &Watchdog::stall_only(16),
            None,
        )
        .expect_err("stuck design must trip the watchdog");
        assert_eq!(trip.cycle, 16, "on {name}");
        assert!(trip.reason.contains("no rule committed"), "on {name}");
    }
}

#[test]
fn hang_injections_are_caught_and_classified() {
    // A two-state machine with a 2-bit state register: states 0 and 1
    // alternate, state 2 is unreachable and no rule handles it. An SEU on
    // the state's high bit wedges the design — the watchdog must classify
    // that as a hang rather than letting the run spin.
    let mut b = DesignBuilder::new("twostate");
    b.reg("st", 2, 0u64);
    b.reg("n", 8, 0u64);
    b.rule(
        "a",
        vec![
            guard(rd0("st").eq(k(2, 0))),
            wr0("st", k(2, 1)),
            wr0("n", rd0("n").add(k(8, 1))),
        ],
    );
    b.rule(
        "b",
        vec![guard(rd0("st").eq(k(2, 1))), wr0("st", k(2, 0))],
    );
    b.schedule(["a", "b"]);
    let td = check(&b.build()).unwrap();
    let td2 = td.clone();
    let mut make_sim = move || Box::new(koika::Interp::new(&td2)) as Box<dyn SimBackend>;
    let mut make_devices = Vec::new;
    let mut engine = FaultEngine {
        td: &td,
        make_sim: &mut make_sim,
        make_devices: &mut make_devices,
    };
    let golden = engine.golden(64, 16).unwrap();
    let st = td.reg_id("st");
    let inj = Injection { cycle: 10, reg: st, bit: 1 };
    let outcome = engine.classify_injections(&[inj], 64, 16, &golden);
    assert!(matches!(outcome, Outcome::Hang { cycle: 26 }), "got {outcome}");
}

#[test]
fn replay_log_survives_text_round_trip_and_reproduces() {
    let (td, mut make_sim, mut make_devices) = collatz_engine_parts();
    let cfg = CampaignConfig {
        seed: 5,
        members: 10,
        cycles: 48,
        max_injections: 2,
        stall_cycles: 24,
    };
    let mut engine = FaultEngine {
        td: &td,
        make_sim: &mut *make_sim,
        make_devices: &mut *make_devices,
    };
    let report = engine.run_campaign(&cfg).unwrap();
    let log = report.to_replay_log("cuttlesim", 6, "");
    let parsed = ReplayLog::from_text(&log.to_text()).unwrap();
    assert_eq!(parsed, log);
    let results = replay_campaign(&mut engine, &parsed).unwrap();
    assert_eq!(results.len(), log.members.len());
    for r in &results {
        assert!(r.reproduced, "member {} did not reproduce", r.member.index);
        assert!(
            r.minimal.is_some(),
            "member {} must shrink to a single-injection reproducer or keep \
             its own single injection",
            r.member.index
        );
    }
}

// ---------------------------------------------------------------------------
// CLI.

#[test]
fn cli_campaign_on_rv32_is_byte_for_byte_reproducible() {
    // The ISSUE's acceptance bar: a fixed-seed 100-member campaign on an
    // rv32 core, identical output across two invocations, every member
    // classified, with the watchdog catching every hang.
    let run = || {
        koika_sim()
            .args([
                "rv32i", "--cycles", "600", "--campaign", "100", "--seed", "7",
                "--stall-cycles", "64",
            ])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.status.success(), "stderr: {}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "campaign output must be reproducible");
    let text = String::from_utf8_lossy(&a.stdout);
    for class in ["masked", "sdc", "divergence", "hang"] {
        assert!(text.contains(class), "summary must report {class} counts");
    }
    // All 100 members land in exactly one class: the four percentages are
    // over the full population (counts sum printed members).
    assert!(text.contains("members=100"));
}

#[test]
fn cli_snapshot_restore_round_trips_across_backends() {
    let dir = std::env::temp_dir().join(format!("koika-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = |p: &str| dir.join(p).to_str().unwrap().to_string();

    // Straight cuttlesim run of 64 cycles, snapshot at the end.
    let out = koika_sim()
        .args(["collatz", "--cycles", "64", "--snapshot-every", "64"])
        .args(["--snapshot-prefix", &prefix("straight-")])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Interp snapshot at cycle 32, resumed on the RTL backend for 32 more.
    let out = koika_sim()
        .args(["collatz", "--cycles", "32", "--backend", "interp"])
        .args(["--snapshot-every", "32", "--snapshot-prefix", &prefix("interp-")])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = koika_sim()
        .args(["collatz", "--cycles", "32", "--backend", "rtl"])
        .args(["--restore", &prefix("interp-00000032.ksnap")])
        .args(["--snapshot-every", "64", "--snapshot-prefix", &prefix("rtl-")])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let straight = std::fs::read(prefix("straight-00000064.ksnap")).unwrap();
    let resumed = std::fs::read(prefix("rtl-00000064.ksnap")).unwrap();
    assert_eq!(
        straight, resumed,
        "interp snapshot resumed on rtl must land byte-identical to a \
         straight cuttlesim run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_record_and_replay_reproduce_every_failing_member() {
    let dir = std::env::temp_dir().join(format!("koika-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("campaign.replay");
    let log = log.to_str().unwrap();

    let out = koika_sim()
        .args(["collatz", "--cycles", "64", "--campaign", "20", "--seed", "42"])
        .args(["--record", log])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let out = koika_sim().args(["collatz", "--replay", log]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "replay failed\nstdout: {text}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("reproduced"));
    assert!(
        text.contains("minimal reproducer"),
        "replay must shrink failures to single-injection reproducers"
    );
    assert!(!text.contains("NOT reproduced"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_watchdog_trips_with_exit_3_and_state_dump() {
    let out = koika_sim()
        .args(["collatz", "--cycles", "100", "--max-cycles", "50"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "watchdog trip must exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("watchdog trip at cycle 50"));
    assert!(err.contains("cycle budget of 50 exhausted"));
    // The state dump is the snapshot's JSON debug form.
    assert!(err.contains("\"format\": \"ksnp\""), "stderr: {err}");
    assert!(err.contains("\"cycles\": 50"));
}

#[test]
fn cli_single_injection_is_classified_against_golden() {
    let out = koika_sim()
        .args(["collatz", "--cycles", "64", "--inject", "10:x:3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("injected SEU 10:x:3"));
    assert!(text.contains("injection outcome: sdc"), "stdout: {text}");
}

#[test]
fn cli_rejects_bad_flag_combinations_up_front_without_panicking() {
    // Every bad invocation exits 2 with a message on stderr — never a
    // panic, never exit 101.
    let cases: &[&[&str]] = &[
        &["collatz", "--record", "x.log"],
        &["collatz", "--campaign", "5", "--replay", "x.log"],
        &["collatz", "--inject", "1:x:0", "--campaign", "5"],
        &["collatz", "--inject", "1:x:0", "--trace", "8"],
        &["collatz", "--restore", "x.ksnap", "--profile"],
        &["collatz", "--watch", "nosuch"],
        &["collatz", "--inject", "1:nosuch:0"],
        &["collatz", "--inject", "1:x:99"],
        &["collatz", "--inject", "not-a-spec"],
        &["collatz", "--snapshot-every", "0"],
        &["collatz", "--stall-cycles", "0"],
        &["collatz", "--max-injections", "0"],
        &["collatz", "--cycles", "banana"],
        &["collatz", "--seed"],
        &["rv32i", "--program", "garbage"],
        &["nosuchdesign"],
        // --serve is a design-free long-running mode: it composes with
        // pool/watchdog tuning only, and rejects every one-shot flag.
        &["--serve", "127.0.0.1:0", "--campaign", "5"],
        &["--serve", "127.0.0.1:0", "--fuzz", "4"],
        &["--serve", "127.0.0.1:0", "--debug"],
        &["--serve", "127.0.0.1:0", "--debug-script", "s.kdb"],
        &["--serve", "127.0.0.1:0", "--batch", "8"],
        &["--serve", "127.0.0.1:0", "--emit", "cpp"],
        &["--serve", "127.0.0.1:0", "--inject", "1:x:0"],
        &["--serve", "127.0.0.1:0", "--trace", "8"],
        &["--serve", "127.0.0.1:0", "--profile"],
        &["--serve", "127.0.0.1:0", "--vcd", "out.vcd"],
        &["--serve", "127.0.0.1:0", "--record", "x.log"],
        &["--serve", "127.0.0.1:0", "--replay", "x.log"],
        &["--serve", "127.0.0.1:0", "--replay-corpus", "dir"],
        &["--serve", "127.0.0.1:0", "--snapshot-every", "16"],
        &["--serve", "127.0.0.1:0", "--restore", "x.ksnap"],
        &["--serve", "127.0.0.1:0", "--watch", "pc"],
        &["--serve", "127.0.0.1:0", "--cycles", "100"],
        &["collatz", "--serve", "127.0.0.1:0"],
        &["--serve", "127.0.0.1:0", "--max-sessions", "0"],
        &["--serve", "127.0.0.1:0", "--jobs", "0"],
        // Server-only flags are meaningless in one-shot mode.
        &["collatz", "--state-dir", "d"],
        &["collatz", "--max-sessions", "4"],
    ];
    for case in cases {
        let out = koika_sim().args(*case).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{case:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.is_empty(), "{case:?} must print a message");
        assert!(!err.contains("panicked"), "{case:?} panicked: {err}");
    }
}

#[test]
fn cli_restore_rejects_wrong_design_snapshot() {
    let dir = std::env::temp_dir().join(format!("koika-wrongsnap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("c-").to_str().unwrap().to_string();
    let snap = format!("{prefix}00000016.ksnap");

    let out = koika_sim()
        .args(["collatz", "--cycles", "16", "--snapshot-every", "16"])
        .args(["--snapshot-prefix", &prefix])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = koika_sim().args(["fir", "--restore", &snap]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("collatz"), "error must name the mismatch: {err}");
    assert!(!err.contains("panicked"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_batched_campaign_is_byte_identical_to_sequential_on_rv32() {
    // The batched-engine conformance bar: a fixed-seed 8-lane batched
    // campaign over the rv32i core must produce a member report that is
    // byte-for-byte the sequential report — same classifications, same
    // divergence cycles, same summary. Lanes are bit-identical to scalar
    // members, so nothing downstream can tell the engines apart.
    let base = [
        "rv32i", "--cycles", "600", "--campaign", "24", "--seed", "7",
        "--stall-cycles", "64",
    ];
    let sequential = koika_sim().args(base).output().unwrap();
    assert!(
        sequential.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&sequential.stderr)
    );
    let batched = koika_sim().args(base).args(["--batch", "8"]).output().unwrap();
    assert!(
        batched.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&batched.stderr)
    );
    assert_eq!(
        sequential.stdout, batched.stdout,
        "8-lane batched campaign must be byte-identical to the sequential run"
    );
    // And batching composes with the parallel runner without changing a byte.
    let parallel = koika_sim()
        .args(base)
        .args(["--batch", "8", "--jobs", "2"])
        .output()
        .unwrap();
    assert!(parallel.status.success());
    assert_eq!(sequential.stdout, parallel.stdout);
}

// ---------------------------------------------------------------------------
// rv32: injected workloads behave, memory devices stay deterministic.

#[test]
fn rv32_campaign_reproduces_at_library_level() {
    let td = check(&rv32::rv32i()).unwrap();
    let program = programs::primes(10);
    let cfg = CampaignConfig {
        seed: 21,
        members: 8,
        cycles: 300,
        max_injections: 2,
        stall_cycles: 64,
    };
    let td2 = td.clone();
    let mut make_sim =
        move || Box::new(Sim::compile(&td2).unwrap()) as Box<dyn SimBackend>;
    let td3 = td.clone();
    let prog = program.clone();
    let mut make_devices = move || {
        vec![Box::new(MagicMemory::new(&td3, &["imem", "dmem"], &prog, MEM_WORDS)) as Box<dyn Device>]
    };
    let mut engine = FaultEngine {
        td: &td,
        make_sim: &mut make_sim,
        make_devices: &mut make_devices,
    };
    let a = engine.run_campaign(&cfg).unwrap();
    let b = engine.run_campaign(&cfg).unwrap();
    assert_eq!(a.summary(), b.summary());
    assert_eq!(a.counts().iter().sum::<usize>(), 8);
}
