//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this shim mirrors the
//! builder API the workspace's benches use (`benchmark_group`, chained
//! `sample_size`/`warm_up_time`/`measurement_time`/`throughput`,
//! `bench_function`, `criterion_group!`/`criterion_main!`) and backs it with
//! a plain wall-clock loop: warm up for the configured duration, then time
//! batches until the measurement window closes and report the mean per
//! iteration plus element throughput. No outlier analysis, no HTML reports.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque blackbox re-export so benches can defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for reporting throughput alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    _private: (),
}

impl Criterion {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Criterion { _private: () }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run single iterations until the window closes, using the
        // observed time to pick a batch size for measurement.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            bencher.iters = 1;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for `sample_size` timed batches filling the measurement window.
        let per_batch = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch_iters = ((per_batch / per_iter.max(1e-9)) as u64).max(1);

        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        let meas_start = Instant::now();
        while meas_start.elapsed() < self.measurement {
            bencher.iters = batch_iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total_iters += batch_iters;
            total_time += bencher.elapsed;
        }

        let mean_ns = total_time.as_secs_f64() * 1e9 / total_iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * total_iters as f64 / total_time.as_secs_f64().max(1e-12);
                format!("  {:>12.0} elem/s", per_sec)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * total_iters as f64 / total_time.as_secs_f64().max(1e-12);
                format!("  {:>12.0} B/s", per_sec)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<24} {:>12.1} ns/iter ({} iters){}",
            self.name, id, mean_ns, total_iters, rate
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a function that runs each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
