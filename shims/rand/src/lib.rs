//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this shim provides the (small) subset of the `rand 0.8` API the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_bool` / `gen_range` / `gen`.
//! The generator is SplitMix64 — statistically fine for tests, not
//! cryptographic, and deliberately *not* reproducing upstream `StdRng`
//! streams (no test in this workspace depends on them).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling a full uniform value (the `rng.gen::<T>()` shape).
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a uniformly distributed value.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..=7);
            assert!(v <= 7);
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..4).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..4).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
    }
}
