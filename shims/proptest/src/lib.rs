//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this shim provides
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the `proptest!` / `prop_compose!` / `prop_oneof!` macros, the
//! `prop_assert*` / `prop_assume!` assertion macros, `any::<T>()`, integer
//! range strategies, tuple strategies, and `Strategy::prop_map`.
//!
//! Differences from upstream, deliberately accepted:
//! - **no shrinking** — a failing case reports the generated input as-is;
//! - **deterministic seeding** — the RNG seed is derived from the test
//!   name (FNV-1a), so runs are reproducible without a persistence file;
//! - `PROPTEST_CASES` still overrides the default case count (256).

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Upstream strategies produce shrinkable value *trees*; this shim only
    /// generates, so the trait is a plain `&self`-driven sampler. `prop_map`
    /// is a provided method kept `Sized`-bound so the trait stays
    /// object-safe for [`OneOf`].
    pub trait Strategy {
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "anything goes" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $w:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values the way upstream's
                    // integer strategies weight edges: all-zeros, all-ones,
                    // and extremes show up far more often than 1-in-2^w.
                    match rng.next_u64() % 16 {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => $w(rng),
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(
        u8 => |r: &mut TestRng| r.next_u64() as u8,
        u16 => |r: &mut TestRng| r.next_u64() as u16,
        u32 => |r: &mut TestRng| r.next_u64() as u32,
        u64 => |r: &mut TestRng| r.next_u64(),
        u128 => |r: &mut TestRng| ((r.next_u64() as u128) << 64) | r.next_u64() as u128,
        usize => |r: &mut TestRng| r.next_u64() as usize,
        i8 => |r: &mut TestRng| r.next_u64() as i8,
        i16 => |r: &mut TestRng| r.next_u64() as i16,
        i32 => |r: &mut TestRng| r.next_u64() as i32,
        i64 => |r: &mut TestRng| r.next_u64() as i64,
        i128 => |r: &mut TestRng| ((r.next_u64() as i128) << 64) | r.next_u64() as i128,
        isize => |r: &mut TestRng| r.next_u64() as isize,
    );

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (((rng.next_u64() as u128) % span) as i128 + self.start as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (((rng.next_u64() as u128) % span) as i128 + start as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Constant strategy (`Just(v)`).
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }

    /// Uniform choice between boxed alternatives; built by [`crate::prop_oneof!`].
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            OneOf { arms: Vec::new() }
        }

        /// Adds one alternative (builder-style, used by the macro).
        pub fn with<S>(mut self, s: S) -> Self
        where
            S: Strategy<Value = T> + 'static,
        {
            self.arms.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

pub mod test_runner {
    /// SplitMix64 — the runner's only entropy source.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input precondition not met (`prop_assume!`); does not count as a case.
        Reject(String),
        /// Property violated (`prop_assert*`); aborts the whole test.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives one property: generate inputs, run the body, stop at the
    /// configured case count or the first failure.
    pub struct TestRunner {
        name: &'static str,
        cfg: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new_for(name: &'static str, cfg: ProptestConfig) -> Self {
            // FNV-1a over the test name: stable across runs and platforms,
            // distinct per property.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                name,
                cfg,
                rng: TestRng::from_seed(h),
            }
        }

        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: crate::strategy::Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value) -> TestCaseResult,
        {
            let mut passed = 0u32;
            let mut attempts = 0u64;
            let max_attempts = (self.cfg.cases as u64).saturating_mul(20).max(1000);
            while passed < self.cfg.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "property `{}`: gave up after {} attempts ({} cases passed): \
                         too many prop_assume! rejections",
                        self.name, attempts, passed
                    );
                }
                let value = strategy.generate(&mut self.rng);
                let shown = format!("{value:?}");
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "property `{}` failed after {} passing case(s)\n  input: {}\n  {}",
                        self.name, passed, shown, msg
                    ),
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Defines property tests: each `fn` body runs once per generated input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new_for(stringify!($name), $cfg);
                let strategy = ( $($strat,)+ );
                runner.run(&strategy, |( $($pat,)+ )| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Defines a named strategy function from sub-strategies plus a mapping body.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($arg:ident : $argty:ty),* $(,)? )
                 ( $($pat:pat in $strat:expr),+ $(,)? )
                 -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ( $($strat,)+ ),
                move |( $($pat,)+ )| -> $ret { $body },
            )
        }
    };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new()$(.with($strat))+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n  right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_even()(n in 0u32..100) -> u32 { n * 2 }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn composed_values_are_even(v in small_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![0u32..1, 10u32..11, (20u32..21).prop_map(|x| x)]) {
            prop_assert!(v == 0 || v == 10 || v == 20, "got {}", v);
        }

        #[test]
        fn tuple_patterns_bind((a, b) in (0u8..4, 0u8..4)) {
            prop_assert!(a < 4 && b < 4);
        }
    }

    proptest! {
        fn always_fails(n in 0u32..10) {
            prop_assert!(n > 100, "n was {}", n);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_panics_with_input() {
        always_fails();
    }
}
