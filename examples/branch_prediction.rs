//! Case study 4 (§4.2): branch-prediction exploration with coverage
//! counters instead of hardware performance counters.
//!
//! The paper adds a BTB + BHT to a baseline "PC + 4" core and, instead of
//! wiring in counters, reads Gcov line counts off the running model: the
//! count of the `WRITE0(pc, ...)` line inside the mispredict branch *is*
//! the misprediction counter, and the scoreboard `FAIL()` count exposes the
//! missing-bypass stalls.
//!
//! Run with: `cargo run --release --example branch_prediction`

use cuttlesim::{CompileOptions, CoverageReport, Sim};
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika_designs::harness::{golden_run, MEM_WORDS};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = programs::branchy(3000);
    let golden = golden_run(&program, 100_000_000);
    println!(
        "Workload: branchy kernel, {} instructions retired by the golden model.\n",
        golden.retired
    );

    let mut results = Vec::new();
    for (name, design) in [("baseline", rv32::rv32i()), ("bp", rv32::rv32i_bp())] {
        let td = check(&design)?;
        let mut sim = Sim::compile_with(
            &td,
            &CompileOptions {
                coverage: true,
                ..CompileOptions::default()
            },
        )?;
        let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
        let retired = td.reg_id("retired");
        let mut cycles = 0u64;
        while sim.get64(retired) < golden.retired {
            mem.tick(cycles, sim.as_reg_access());
            sim.cycle();
            cycles += 1;
        }
        let report = CoverageReport::collect(&sim);

        // The paper's listing: the execute stage's redirect line.
        println!("--- snippet of the execute stage ({name}), Gcov style ---");
        let mut in_mispredict = false;
        for (count, rule, label) in report.iter() {
            if rule != "execute" {
                continue;
            }
            if label == "mispredict" {
                in_mispredict = true;
            }
            if label.contains("if ((v") && in_mispredict
                || label.contains("WRITE0(pc,")
                || label == "mispredict"
            {
                println!("  {count:>10}: {label}");
            }
            if label.contains("WRITE0(epoch") {
                in_mispredict = false;
            }
        }
        let mispredicts: u64 = report
            .iter()
            .filter(|(_, rule, l)| *rule == "execute" && l.contains("WRITE0(pc,"))
            .map(|(c, _, _)| c)
            .sum();
        let stalls = report.count_matching("decode", "FAIL()");
        println!("--- snippet of the scoreboard logic ({name}) ---");
        for (count, rule, label) in report.iter() {
            if rule == "decode" && (label.contains("scoreboard_stall") || label.contains("FAIL")) {
                println!("  {count:>10}: {label}");
            }
        }
        println!();
        results.push((name, cycles, mispredicts, stalls));
    }

    println!("{:<10} {:>10} {:>13} {:>16} {:>8}", "design", "cycles", "mispredicts", "sb-stalls", "IPC");
    for (name, cycles, mispredicts, stalls) in &results {
        println!(
            "{:<10} {:>10} {:>13} {:>16} {:>8.3}",
            name,
            cycles,
            mispredicts,
            stalls,
            golden.retired as f64 / *cycles as f64
        );
    }
    let (_, _, base_mp, base_st) = results[0];
    let (_, _, bp_mp, bp_st) = results[1];
    println!(
        "\nMispredictions fell {:.1}x with the BTB+BHT; scoreboard stalls barely moved \
         ({base_st} -> {bp_st}),\npointing at missing bypass paths as the next bottleneck — \
         the paper's exact conclusion.",
        base_mp as f64 / bp_mp.max(1) as f64
    );
    Ok(())
}
