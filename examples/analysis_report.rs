//! Static-analysis report: what the §3.3 abstract-interpretation pass
//! discovers about each benchmark design — register classification (plain
//! register / wire / EHR), safe registers (no conflict checks compiled in),
//! and commit footprints — plus the resulting circuit sizes on the RTL
//! side. This is the data the design-specific optimization level feeds on.
//!
//! Run with: `cargo run --example analysis_report`

use koika::analysis::{analyze, RegClass, ScheduleAssumption};
use koika::check::check;
use koika_designs::{msi, rv32, small};
use koika_rtl::{compile as rtl_compile, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:>6} {:>7} {:>6} {:>5} {:>6} {:>7} {:>9} {:>7}",
        "design", "syms", "plain", "wire", "ehr", "safe", "safe%", "avg-fp", "gates"
    );
    for design in [
        small::collatz(),
        small::fir(),
        small::fft(),
        rv32::rv32i(),
        rv32::rv32i_bp(),
        rv32::rv32i_bypass(),
        msi::msi_system(),
    ] {
        let td = check(&design)?;
        let a = analyze(&td, ScheduleAssumption::Declared);
        let count = |c: RegClass| a.class.iter().filter(|x| **x == c).count();
        let safe = a.safe_sym.iter().filter(|s| **s).count();
        let avg_fp: f64 = a
            .rules
            .iter()
            .map(|r| r.footprint_data.len() as f64)
            .sum::<f64>()
            / td.rules.len().max(1) as f64;
        let gates = rtl_compile(&td, Scheme::Dynamic)?.netlist.len();
        println!(
            "{:<14} {:>6} {:>7} {:>6} {:>5} {:>6} {:>6.0}% {:>9.1} {:>7}",
            td.name,
            td.syms.len(),
            count(RegClass::Plain),
            count(RegClass::Wire),
            count(RegClass::Ehr),
            safe,
            100.0 * safe as f64 / td.syms.len() as f64,
            avg_fp,
            gates,
        );
    }

    // Detail view for the rv32i core: the per-register story.
    println!("\nrv32i register detail (the §3.3 classification):");
    let td = check(&rv32::rv32i())?;
    let a = analyze(&td, ScheduleAssumption::Declared);
    for (i, sym) in td.syms.iter().enumerate() {
        println!(
            "  {:<18} {:<15} {}",
            sym.name,
            a.class[i].to_string(),
            if a.safe_sym[i] {
                "safe: compiled without conflict checks"
            } else {
                "checked"
            }
        );
    }
    Ok(())
}
