//! Case study 2 (§4.2): functional verification with scheduler
//! randomization.
//!
//! "A good rule-based design should use its scheduler for performance, but
//! not for functional correctness: designs should work regardless of the
//! order that rules are executed in." With Cuttlesim this is trivial to
//! test: call the rules in a random order each cycle and check the design
//! still computes the right answer.
//!
//! Run with: `cargo run --release --example scheduler_randomization`

use cuttlesim::{CompileOptions, OptLevel, Sim};
use koika::analysis::ScheduleAssumption;
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika::testgen::SplitMix64;
use koika_designs::harness::{golden_run, MEM_WORDS};
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let td = check(&rv32::rv32i())?;
    let program = programs::primes(100);
    let golden = golden_run(&program, 10_000_000);
    println!(
        "Golden model: {} primes below 100, {} instructions retired.",
        golden.regs[10], golden.retired
    );

    // Compile with the AnyOrder assumption: the static analysis must not
    // bake in the declared schedule if we are going to permute it.
    let opts = CompileOptions {
        level: OptLevel::max(),
        assumption: ScheduleAssumption::AnyOrder,
        coverage: false,
        optimize: true,
    };

    for trial in 0..5u64 {
        let mut sim = Sim::compile_with(&td, &opts)?;
        let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &program, MEM_WORDS);
        let retired = td.reg_id("retired");
        let mut rng = SplitMix64::new(0xD1CE + trial);
        let nrules = td.rules.len();

        let mut cycles = 0u64;
        while sim.get64(retired) < golden.retired {
            mem.tick(cycles, sim.as_reg_access());
            // A fresh random permutation of all rules, every cycle.
            let mut order: Vec<usize> = (0..nrules).collect();
            for i in (1..nrules).rev() {
                order.swap(i, rng.below(i as u64 + 1) as usize);
            }
            sim.cycle_with_order(&order);
            cycles += 1;
            assert!(cycles < 50_000_000, "did not finish");
        }

        let result = mem.word(programs::RESULT_ADDR);
        assert_eq!(result, golden.regs[10], "wrong result under permutation");
        for i in 0..32 {
            assert_eq!(
                sim.get64(td.reg_elem("rf", i)) as u32,
                golden.regs[i as usize],
                "architectural register x{i} diverged"
            );
        }
        println!(
            "trial {trial}: random schedules ok — result {result}, {} cycles \
             (vs ~{} instructions; random orders waste slots, as expected)",
            cycles, golden.retired
        );
    }
    println!("\nThe core is schedule-independent: correctness never relied on rule order.");
    Ok(())
}
