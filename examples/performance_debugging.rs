//! Case study 3 (§4.2): performance debugging — why do 100 NOPs take ~200
//! cycles?
//!
//! The paper's programmer steps through the pipeline rule by rule in gdb
//! and finds the decode stage stalling on the scoreboard: NOP is
//! `addi x0, x0, 0`, and the designer forgot the x0 special case, so every
//! NOP creates a phantom dependency on the hardwired-zero register.
//!
//! This example reproduces the investigation: measure, step through one
//! stalled cycle rule-by-rule, read the coverage counters that pin the
//! blame, then run the fixed core.
//!
//! Run with: `cargo run --example performance_debugging`

use cuttlesim::{CompileOptions, CoverageReport, Sim};
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika_designs::harness::MEM_WORDS;
use koika_designs::memdev::MagicMemory;
use koika_designs::rv32;
use koika_riscv::programs;

fn run_nops(design: koika::design::Design) -> (u64, Sim, koika::tir::TDesign) {
    let td = check(&design).unwrap();
    let mut sim = Sim::compile_with(
        &td,
        &CompileOptions {
            coverage: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    let mut mem = MagicMemory::new(&td, &["imem", "dmem"], &programs::nops(100), MEM_WORDS);
    let retired = td.reg_id("retired");
    let mut cycles = 0u64;
    while sim.get64(retired) < 100 {
        mem.tick(cycles, sim.as_reg_access());
        sim.cycle();
        cycles += 1;
        assert!(cycles < 10_000);
    }
    (cycles, sim, td)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Retiring 100 NOPs on the current core design...");
    let (cycles, sim, td) = run_nops(rv32::rv32i_x0bug());
    println!(
        "  took {cycles} cycles — suspicious! One would assume ~1 cycle per \
         instruction on a\n  program with no branches and no misses.\n"
    );

    // Step through the steady state rule by rule, like the paper's gdb
    // session — the trace makes the every-other-cycle decode stall obvious.
    println!("Rule-by-rule activity in the steady state (cycles 30-39):");
    let td2 = td.clone();
    let mut probe = Sim::compile(&td2)?;
    let mut mem = MagicMemory::new(&td2, &["imem", "dmem"], &programs::nops(100), MEM_WORDS);
    for cycle in 0..30u64 {
        mem.tick(cycle, probe.as_reg_access());
        probe.cycle();
    }
    let trace = cuttlesim::RuleTrace::record(&mut probe, &mut [&mut mem], 10);
    print!("{trace}");
    if let Some(f) = probe.last_fail() {
        print!("  last failure: rule {:?}", td2.rules[f.rule].name);
        if let Some(reg) = f.reg {
            print!(" — conflict on register {}", td2.regs[reg.0 as usize].name);
        }
        println!();
    }

    // The coverage counters name the culprit without any extra hardware.
    println!("\nCoverage counters (Gcov view) for the decode rule:");
    let report = CoverageReport::collect(&sim);
    for (count, rule, label) in report.iter() {
        if rule == "decode" && (label.contains("scoreboard") || label.contains("DEF_RULE")) {
            println!("  {count:>8}: {label}");
        }
    }
    let stalls = report.count_matching("decode", "FAIL()");
    println!(
        "\n  decode aborted {stalls} times — every other cycle. The scoreboard marks a\n  \
         dependency for the NOP's destination register... which is x0. The designer\n  \
         forgot that x0 is hardwired to zero and never needs tracking."
    );

    println!("\nApplying the fix (skip scoreboard tracking when rd == x0)...");
    let (fixed_cycles, fixed_sim, _) = run_nops(rv32::rv32i());
    let fixed_report = CoverageReport::collect(&fixed_sim);
    println!(
        "  100 NOPs now take {fixed_cycles} cycles ({} decode stalls) — full pipeline speed.",
        fixed_report.count_matching("decode", "FAIL()")
    );
    Ok(())
}
