//! Waveform dumping: the traditional hardware-debugging view, available
//! from any backend. Records the collatz design's registers into a VCD
//! file that GTKWave (or any VCD viewer) can open.
//!
//! Run with: `cargo run --example waveforms`

use cuttlesim::Sim;
use koika::check::check;
use koika::device::SimBackend;
use koika::vcd::VcdRecorder;
use koika_designs::small::collatz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let td = check(&collatz())?;
    let mut sim = Sim::compile(&td)?;
    let mut vcd = VcdRecorder::all_registers(&td);

    let cycles = 120;
    sim.run(cycles, &mut [&mut vcd]);

    let dump = vcd.finish(cycles);
    let path = std::env::temp_dir().join("collatz.vcd");
    std::fs::write(&path, &dump)?;
    println!("Wrote {} bytes of VCD to {}", dump.len(), path.display());
    println!("\nFirst lines:");
    for line in dump.lines().take(14) {
        println!("  {line}");
    }
    println!("  ...");
    println!("\nOpen it with e.g.: gtkwave {}", path.display());
    Ok(())
}
