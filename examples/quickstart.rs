//! Quickstart: build the paper's §2.1 two-state machine, simulate it on
//! every backend, and peek at the generated artifacts.
//!
//! Run with: `cargo run --example quickstart`

use cuttlesim::Sim;
use koika::ast::*;
use koika::check::check;
use koika::design::DesignBuilder;
use koika::device::{RegAccess, SimBackend};
use koika::interp::Interp;
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: two rules, mutually exclusive on `st`,
    // each doing combinational work and toggling the state.
    let mut b = DesignBuilder::new("stm");
    b.reg("st", 1, 0u64);
    b.reg("x", 32, 3u64);
    b.reg("input", 32, 10u64);
    b.reg("output", 32, 0u64);
    b.rule(
        "rlA",
        vec![
            guard(rd0("st").eq(k(1, 0))), // if (st.rd0 != `A) abort
            wr0("st", k(1, 1)),           // st.wr0(`B)
            let_("new_x", rd0("x").add(rd0("input"))),
            wr0("x", var("new_x")),
            wr0("output", var("new_x")),
        ],
    );
    b.rule(
        "rlB",
        vec![
            guard(rd0("st").eq(k(1, 1))),
            wr0("st", k(1, 0)),
            let_("new_x", rd0("x").mul(k(32, 2))),
            wr0("x", var("new_x")),
            wr0("output", var("new_x")),
        ],
    );
    b.schedule(["rlA", "rlB"]);
    let design = check(&b.build())?;

    // 1. The reference interpreter (the naive model).
    let mut interp = Interp::new(&design);
    // 2. Cuttlesim: compiled, statically analyzed, sequential.
    let mut fast = Sim::compile(&design)?;
    // 3. The RTL pipeline: one circuit per rule, all evaluated every cycle.
    let mut rtl = RtlSim::new(rtl_compile(&design, Scheme::Dynamic)?);

    println!("cycle |  interp | cuttlesim |  rtl  (register x)");
    let x = design.reg_id("x");
    for cycle in 0..6 {
        interp.cycle();
        fast.cycle();
        rtl.cycle();
        println!(
            "{cycle:>5} | {:>7} | {:>9} | {:>5}",
            interp.get64(x),
            fast.get64(x),
            rtl.get64(x)
        );
        assert_eq!(interp.get64(x), fast.get64(x));
        assert_eq!(interp.get64(x), rtl.get64(x));
    }

    println!("\n--- register classification (the §3.3 static analysis) ---");
    let analysis = fast.program().analysis.clone();
    for (i, sym) in design.syms.iter().enumerate() {
        println!(
            "  {:<8} {:>16}  {}",
            sym.name,
            analysis.class[i].to_string(),
            if analysis.safe_sym[i] {
                "safe (no conflict checks compiled in)"
            } else {
                "checked"
            }
        );
    }

    println!("\n--- the readable C++ model Cuttlesim would emit ---");
    println!("{}", cuttlesim::codegen_cpp::emit(&design));

    println!("--- first lines of the generated Verilog ---");
    let verilog = koika_rtl::verilog::emit(rtl.model());
    for line in verilog.lines().take(12) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
