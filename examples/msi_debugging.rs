//! Case study 1 (§4.2): debugging a deadlock in a 2-core MSI cache-
//! coherence system with software-debugger workflows.
//!
//! The paper's programmer runs the model under gdb, prints the MSHR and
//! parent state *by name* (the enum survives compilation), breaks on
//! `FAIL()`, and steps backwards with `rr`. This example walks the same
//! investigation using the equivalents this library exposes: named state
//! inspection, per-rule failure counters, state snapshots and reverse
//! stepping.
//!
//! Run with: `cargo run --example msi_debugging`

use cuttlesim::Sim;
use koika::check::check;
use koika::device::{Device, RegAccess, SimBackend};
use koika::testgen::SplitMix64;
use koika::tir::{RegId, TDesign};
use koika_designs::msi::{self, mshr, parent};

fn mshr_name(v: u64) -> &'static str {
    match v {
        mshr::READY => "Ready",
        mshr::SEND_FILL_REQ => "SendFillReq",
        mshr::WAIT_FILL_RESP => "WaitFillResp",
        _ => "?",
    }
}

fn parent_name(v: u64) -> &'static str {
    match v {
        parent::READY => "Ready",
        parent::CONFIRM_DOWNGRADES => "ConfirmDowngrades",
        _ => "?",
    }
}

#[derive(Clone, Copy)]
struct CpuPort {
    req_valid: RegId,
    req_addr: RegId,
    req_store: RegId,
    req_wdata: RegId,
    resp_valid: RegId,
}

impl CpuPort {
    fn resolve(td: &TDesign, core: usize) -> CpuPort {
        CpuPort {
            req_valid: td.reg_id(&format!("c{core}_cpu_req_valid")),
            req_addr: td.reg_id(&format!("c{core}_cpu_req_addr")),
            req_store: td.reg_id(&format!("c{core}_cpu_req_store")),
            req_wdata: td.reg_id(&format!("c{core}_cpu_req_wdata")),
            resp_valid: td.reg_id(&format!("c{core}_cpu_resp_valid")),
        }
    }
}

/// Minimal traffic generator: both cores hammer a few shared addresses.
struct Traffic {
    rng: SplitMix64,
    ports: [CpuPort; 2],
    pending: [bool; 2],
    completed: u64,
}

impl Device for Traffic {
    fn tick(&mut self, _cycle: u64, regs: &mut dyn RegAccess) {
        for i in 0..2 {
            let p = self.ports[i];
            if regs.get64(p.resp_valid) == 1 {
                regs.set64(p.resp_valid, 0);
                self.pending[i] = false;
                self.completed += 1;
            }
            if !self.pending[i] && regs.get64(p.req_valid) == 0 {
                regs.set64(p.req_valid, 1);
                regs.set64(p.req_addr, self.rng.below(4)); // heavy contention
                regs.set64(p.req_store, self.rng.chance(1, 2) as u64);
                regs.set64(p.req_wdata, self.rng.next_u64() & 0xffff);
                self.pending[i] = true;
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let td = check(&msi::msi_system_buggy())?;
    let mut sim = Sim::compile(&td)?;
    sim.enable_history(64); // our `rr`: keep the last 64 cycles
    let mut traffic = Traffic {
        rng: SplitMix64::new(99),
        ports: [CpuPort::resolve(&td, 0), CpuPort::resolve(&td, 1)],
        pending: [false, false],
        completed: 0,
    };

    println!("Running the (buggy) MSI system until it stops making progress...");
    let mut last_completed = 0;
    let mut stuck = 0;
    let mut cycle = 0u64;
    loop {
        traffic.tick(cycle, sim.as_reg_access());
        sim.cycle();
        cycle += 1;
        if traffic.completed == last_completed {
            stuck += 1;
            if stuck > 500 {
                break;
            }
        } else {
            stuck = 0;
            last_completed = traffic.completed;
        }
        if cycle > 100_000 {
            println!("no deadlock observed — is this the fixed system?");
            return Ok(());
        }
    }
    println!(
        "Deadlock: no operation completed for 500 cycles (cycle {cycle}, {} ops done).\n",
        traffic.completed
    );

    // "gdb> print system state" — names, not bit soup:
    println!("Inspecting the stuck state (the paper's gdb session):");
    for i in 0..2 {
        let st = sim.get64(td.reg_id(&format!("c{i}_mshr_state")));
        let addr = sim.get64(td.reg_id(&format!("c{i}_mshr_addr")));
        println!("  core {i}: MSHR = {:<13} (addr {addr})", mshr_name(st));
    }
    let req_core = sim.get64(td.reg_id("p_req_core"));
    println!(
        "  parent: state = {:<18} (serving core {req_core}, addr {})",
        parent_name(sim.get64(td.reg_id("p_state"))),
        sim.get64(td.reg_id("p_req_addr"))
    );

    // "gdb> break FAIL(); run" — which rules keep failing:
    println!("\nPer-rule counters (the FAIL() breakpoint view):");
    for (i, rule) in td.rules.iter().enumerate() {
        let fails = sim.fails_per_rule()[i];
        let fires = sim.fired_per_rule()[i];
        if fails > 0 || fires > 0 {
            println!(
                "  {:<14} fired {:>8}  failed {:>8}",
                rule.name, fires, fails
            );
        }
    }
    if let Some(fail) = sim.last_fail() {
        println!(
            "  last failure: rule {:?} at cycle {}",
            td.rules[fail.rule].name, fail.cycle
        );
    }

    // "rr> reverse-continue" — step back through history and find the cycle
    // the parent entered ConfirmDowngrades for the wedged transaction.
    println!("\nReverse execution: searching for the transition into ConfirmDowngrades...");
    let mut steps_back = 0;
    while sim.get64(td.reg_id("p_state")) == parent::CONFIRM_DOWNGRADES && sim.step_back(1) {
        steps_back += 1;
    }
    println!(
        "  the parent entered ConfirmDowngrades {steps_back}+ cycles before the deadlock \
         was detected;"
    );
    println!(
        "  the downgrade request went to core {}, but the (buggy) parent waits for an",
        1 - req_core
    );
    println!(
        "  acknowledgement from core {req_core} — the requester — which will never send one."
    );
    println!("\nDiagnosis: p_confirm checks the wrong ack channel (see msi_system_buggy).");
    Ok(())
}
