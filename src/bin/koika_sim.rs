//! `koika-sim`: command-line driver for the bundled designs — simulate on
//! any backend, dump waveforms, profile, trace, emit C++/Verilog, run
//! fault-injection campaigns (optionally in parallel), differentially fuzz
//! all backends against each other, snapshot/restore simulator state, or
//! debug interactively with time travel (`--debug`).
//!
//! ```text
//! Usage: koika-sim <design> [options]
//!        koika-sim --fuzz <N> [--seed S] [--jobs J] [--corpus-dir DIR]
//!        koika-sim --replay-corpus <DIR>
//!        koika-sim --serve <ADDR> [--jobs J] [--max-sessions N]
//!
//! Designs:
//!   collatz | fir | fft | rv32i | rv32e | rv32i-bp | rv32i-bypass |
//!   rv32i-x0bug | msi | msi-buggy
//!
//! Options:
//!   --backend <interp|cuttlesim|rtl|rtl-static>   (default cuttlesim)
//!   --level <1..6>      Cuttlesim optimization level  (default 6)
//!   --dispatch <match|closure|tac|native>  Cuttlesim dispatch engine
//!                       (default match; native compiles to a cdylib via rustc)
//!   --native-cache <DIR>  cache directory for native-dispatch artifacts
//!   --cycles <N>        cycles to run        (default 10000; 96 under --fuzz)
//!   --program <primes:N|nops:N|branchy:N>  core workload (default primes:100)
//!   --vcd <FILE>        record all registers to a VCD file
//!   --profile           print a per-rule work profile (cuttlesim backend)
//!   --trace <N>         print the last N cycles of rule activity
//!   --emit <cpp|cpp-header|verilog>  print generated code and exit
//!   --metrics-json <FILE>  write a JSON metrics snapshot (per-rule counts)
//!   --perfetto <FILE>   write a Chrome-trace/Perfetto rule timeline
//!   --watch <REG>       print a line when REG changes (repeatable)
//!   --inject <spec|seed>  flip bits: cycle:reg:bit spec, or a PRNG seed
//!   --campaign <N>      run an N-member fault-injection campaign
//!   --fuzz <N>          run N differential-fuzz cases over all backends
//!   --batch <N>         run N instances in one lock-step SoA batch
//!                       (cuttlesim backend; composes with --campaign/--fuzz)
//!   --jobs <J>          worker threads for --campaign/--fuzz (default 1)
//!   --retries <K>       retries for wall-budget trips (default 2)
//!   --corpus-dir <DIR>  persist shrunk fuzz reproducers to DIR
//!   --replay-corpus <DIR>  re-run every *.fuzz reproducer in DIR
//!   --seed <N>          campaign / fuzz / seeded-injection PRNG seed
//!   --max-injections <N>  upsets per campaign member (default 3)
//!   --record <FILE>     write failing campaign members to a replay log
//!   --replay <FILE>     re-run a replay log's members; shrink reproducers
//!   --snapshot-every <K>  write a state snapshot every K cycles
//!   --snapshot-prefix <P> snapshot file prefix (default "<design>-")
//!   --restore <FILE>    restore simulator state from a snapshot first
//!   --max-cycles <N>    watchdog: abort after N total cycles (exit 3)
//!   --stall-cycles <N>  watchdog: abort after N commit-free cycles (exit 3)
//!   --max-wall-ms <N>   watchdog: abort after N ms of wall-clock (exit 3)
//!   --debug             attach the interactive time-travel debugger (kdb)
//!   --debug-script <FILE>  run a kdb command script, print the transcript
//!   --debug-on-divergence  with --fuzz/--replay-corpus: attach kdb at the
//!                       first divergent cycle of the first diverging case
//!   --vcd-lane <N>      with --batch + --vcd: lane to record (default 0)
//!   --serve <ADDR>      run the multi-tenant simulation session server
//!   --max-sessions <N>  with --serve: admission-control bound (default 16384)
//!   --help              print this help and exit
//! ```
//!
//! Campaign and fuzz progress goes to **stderr**; stdout carries only the
//! machine-parseable report, which is byte-identical for a given seed
//! regardless of `--jobs`.

use cuttlesim::{codegen_cpp, BatchSim, CompileOptions, Dispatch, OptLevel, ProfileReport, RuleTrace, Sim};
use cuttlesim_repro::fuzz;
use koika::check::check;
use koika::debug::{BatchTarget, DebugOptions, ScalarTarget};
use koika::design::Design;
use koika::device::{BatchBackend, Device, LaneAccess, SimBackend};
use koika::fault::{
    classify, draw_schedule, replay_campaign, run_campaign_batched, run_campaign_parallel,
    CampaignConfig, CommitFingerprint, FaultEngine, Injection, ParallelFactories, ParallelOptions,
    ReplayLog, Watchdog, WatchdogTrip,
};
use koika::obs::{Fanout, Metrics, Observer, PerfettoTrace, RegWatch};
use koika::runner::{JobUpdate, RunnerConfig, RunnerStats};
use koika::snapshot::Snapshot;
use koika::tir::TDesign;
use koika::vcd::VcdRecorder;
use koika_designs::harness::MEM_WORDS;
use koika_designs::memdev::MagicMemory;
use koika_designs::{msi, rv32, small};
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, verilog, RtlSim, Scheme};
use koika_server::{DesignProvider, ServerConfig};
use std::io::{BufRead, Read};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    design: String,
    backend: String,
    level: u32,
    dispatch: Option<String>,
    native_cache: Option<String>,
    cycles: Option<u64>,
    program: String,
    vcd: Option<String>,
    profile: bool,
    trace: Option<u64>,
    emit: Option<String>,
    metrics_json: Option<String>,
    perfetto: Option<String>,
    watch: Vec<String>,
    inject: Option<String>,
    campaign: Option<usize>,
    fuzz: Option<usize>,
    batch: Option<usize>,
    jobs: usize,
    retries: u32,
    corpus_dir: Option<String>,
    replay_corpus: Option<String>,
    seed: u64,
    max_injections: u32,
    record: Option<String>,
    replay: Option<String>,
    snapshot_every: Option<u64>,
    snapshot_prefix: Option<String>,
    restore: Option<String>,
    max_cycles: Option<u64>,
    stall_cycles: Option<u64>,
    max_wall_ms: Option<u64>,
    debug: bool,
    debug_script: Option<String>,
    debug_on_divergence: bool,
    vcd_lane: Option<usize>,
    serve: Option<String>,
    max_sessions: Option<usize>,
    state_dir: Option<String>,
}

impl Args {
    /// The effective cycle budget for design runs (fuzz has its own,
    /// smaller default — see `run_fuzz_mode`).
    fn run_cycles(&self) -> u64 {
        self.cycles.unwrap_or(10_000)
    }

    /// Whether either debugger entry point (`--debug` / `--debug-script`)
    /// was requested.
    fn debug_requested(&self) -> bool {
        self.debug || self.debug_script.is_some()
    }

    /// Worker-pool shape shared by `--campaign` and `--fuzz`.
    fn runner_config(&self) -> RunnerConfig {
        RunnerConfig {
            jobs: self.jobs,
            max_retries: self.retries,
            seed: self.seed,
            ..RunnerConfig::default()
        }
    }
}

const HELP: &str = "\
Usage: koika-sim <design> [options]
       koika-sim --fuzz <N> [--seed S] [--jobs J] [--corpus-dir DIR]
       koika-sim --replay-corpus <DIR>
       koika-sim --serve <ADDR> [--jobs J] [--max-sessions N]

Designs:
  collatz | fir | fft | rv32i | rv32e | rv32i-bp | rv32i-bypass |
  rv32i-x0bug | msi | msi-buggy

Options:
  --backend <interp|cuttlesim|rtl|rtl-static>   (default cuttlesim)
  --level <1..6>      Cuttlesim optimization level  (default 6)
  --dispatch <match|closure|tac|native>  Cuttlesim instruction dispatch:
                      direct bytecode match, pre-bound closures, the
                      register-form micro-op engine, or ahead-of-time
                      compiled Rust loaded as a shared library (requires a
                      rustc toolchain; see --native-cache)  (default match)
  --native-cache <DIR>  cache directory for native-dispatch generated
                      sources and shared libraries (default
                      $KOIKA_NATIVE_CACHE or <tmp>/koika-native-cache);
                      artifacts are keyed by design fingerprint, so a
                      changed design never reuses a stale library
  --cycles <N>        cycles to run       (default 10000; 96 under --fuzz)
  --program <primes:N|nops:N|branchy:N>  core workload (default primes:100)
  --vcd <FILE>        record all registers to a VCD file
  --profile           print a per-rule work profile (cuttlesim backend)
  --trace <N>         print the last N cycles of rule activity
  --emit <cpp|cpp-header|verilog>  print generated code and exit
  --metrics-json <FILE>  write a JSON metrics snapshot (per-rule fired/failed
                         counts, histograms, cycles/sec)
  --perfetto <FILE>   write a Chrome-trace/Perfetto timeline (one track per
                      rule; open in chrome://tracing or ui.perfetto.dev)
  --watch <REG>       print a line whenever REG changes (repeatable)

Time-travel debugging:
  --debug             attach the interactive debugger (kdb): breakpoints on
                      rule commit/abort and cycle numbers, watchpoints on
                      register change or value, step / continue / run-to,
                      reverse-step / reverse-continue (checkpoints plus
                      deterministic re-execution), dump-vcd and snapshot at
                      the paused cycle; identical on every backend,
                      including --batch (see focus-lane)
  --debug-script <FILE>  run a kdb command script non-interactively and
                      print the echoed transcript (byte-identical across
                      backends for the same design and script)
  --debug-on-divergence  with --fuzz or --replay-corpus: re-run the first
                      diverging case, print both register files side by
                      side, and attach kdb to the diverging backend at the
                      first cycle whose post-state differs from the
                      reference interpreter
  --vcd-lane <N>      with --batch + --vcd: record lane N (default 0)

Fault injection, snapshots & replay:
  --inject <spec|seed>  single-run injection: a cycle:reg:bit spec (e.g.
                        12:pc:3, repeatable), or a bare integer treated as a
                        PRNG seed drawing a schedule; the run is classified
                        against a fault-free golden run
  --campaign <N>      run an N-member seeded SEU campaign and print the
                      masked/sdc/divergence/hang/panic/flaky classification
  --seed <N>          campaign / fuzz / seeded-injection PRNG seed
                      (default 0xC0FFEE)

Parallel execution & differential fuzzing:
  --fuzz <N>          run N differential-fuzz cases: random designs compared
                      cycle-by-cycle across the reference interpreter, all
                      six VM levels, and both RTL schemes; mismatches,
                      panics, and hangs are triaged into deduplicated
                      buckets with shrunk reproducers (exit 1 on findings)
  --batch <N>         run N design instances in one lock-step SoA batch
                      (cuttlesim backend only). Alone: N identical lanes,
                      throughput reported in instance-cycles/s. With
                      --campaign: members run as lanes, one batch per
                      worker job; with --fuzz: the six VM levels run
                      batched, lane 0 on declared inits and lanes 1..N on
                      perturbed inits. Reports stay byte-identical to the
                      scalar path at any N
  --jobs <J>          worker threads for --campaign/--fuzz (default 1);
                      the report is byte-identical at any J
  --retries <K>       retries granted to wall-budget trips before they are
                      classified flaky (default 2)
  --corpus-dir <DIR>  with --fuzz: persist one koika-fuzz v1 reproducer
                      file per bucket into DIR
  --replay-corpus <DIR>  re-run every *.fuzz reproducer in DIR and check
                      its recorded expectation (exit 1 on failure)
  --max-injections <N>  upsets per campaign member (default 3)
  --record <FILE>     with --campaign: write failing members to a replay log
  --replay <FILE>     re-run a replay log's members, verify each outcome
                      reproduces, and shrink to single-injection reproducers
  --snapshot-every <K>  write <prefix><cycle>.ksnap every K cycles
  --snapshot-prefix <P> snapshot file prefix (default \"<design>-\")
  --restore <FILE>    restore simulator state from a .ksnap snapshot first
  --max-cycles <N>    watchdog: abort after N total cycles (exit 3)
  --stall-cycles <N>  watchdog: abort after N consecutive commit-free
                      cycles with a JSON state dump (exit 3)
  --max-wall-ms <N>   watchdog: abort after N ms of wall-clock (exit 3)

Simulation server:
  --serve <ADDR>      serve the bundled designs as a multi-tenant session
                      server on ADDR (use port 0 to pick a free port; the
                      bound address is printed as \"serving on HOST:PORT\").
                      Clients speak line-oriented JSON: create / step /
                      inject / snapshot / restore / query-regs /
                      stream-trace / evict / close / metrics / ping /
                      shutdown. Composes with --jobs, --retries, --seed,
                      --max-sessions, --state-dir, and the watchdog budget
                      flags (which
                      become the default per-session budgets); one-shot
                      run flags are rejected
  --max-sessions <N>  with --serve: admission-control bound on resident
                      sessions (default 16384); `create` beyond it gets a
                      busy reply
  --state-dir <DIR>   with --serve: durable crash recovery. Every
                      state-mutating op is write-ahead journaled into DIR
                      before it executes; restarting with the same DIR
                      (even after kill -9) rebuilds the session table
                      byte-identically by replaying the journals. Clients
                      may tag mutating ops with \"req_id\" for idempotent
                      re-submission
  --help              print this help and exit
";

/// All user-facing failures funnel through this one error type: `Usage`
/// exits 2, `Runtime` exits 1, `Watchdog` exits 3. Nothing on a
/// user-reachable path panics.
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError::Runtime(msg.into())
    }
}

fn usage_hint() -> &'static str {
    "try: koika-sim --help"
}

fn parse_args() -> Result<Args, Result<ExitCode, CliError>> {
    let mut argv = std::env::args().skip(1).peekable();
    // The design positional is optional: `--fuzz` and `--replay-corpus`
    // generate or load their own designs.
    let design = match argv.peek() {
        Some(first) if !first.starts_with('-') => argv.next().unwrap_or_default(),
        _ => String::new(),
    };
    let mut args = Args {
        design,
        backend: "cuttlesim".into(),
        level: 6,
        dispatch: None,
        native_cache: None,
        cycles: None,
        program: "primes:100".into(),
        vcd: None,
        profile: false,
        trace: None,
        emit: None,
        metrics_json: None,
        perfetto: None,
        watch: Vec::new(),
        inject: None,
        campaign: None,
        fuzz: None,
        batch: None,
        jobs: 1,
        retries: 2,
        corpus_dir: None,
        replay_corpus: None,
        seed: 0xC0FFEE,
        max_injections: 3,
        record: None,
        replay: None,
        snapshot_every: None,
        snapshot_prefix: None,
        restore: None,
        max_cycles: None,
        stall_cycles: None,
        max_wall_ms: None,
        debug: false,
        debug_script: None,
        debug_on_divergence: false,
        vcd_lane: None,
        serve: None,
        max_sessions: None,
        state_dir: None,
    };
    fn parsed<T: std::str::FromStr>(name: &str, v: String) -> Result<T, Result<ExitCode, CliError>> {
        v.parse()
            .map_err(|_| Err(CliError::usage(format!("bad value {v:?} for {name}"))))
    }
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| Err(CliError::usage(format!("missing value for {name}"))))
        };
        match flag.as_str() {
            "--backend" => args.backend = value("--backend")?,
            "--level" => args.level = parsed("--level", value("--level")?)?,
            "--dispatch" => args.dispatch = Some(value("--dispatch")?),
            "--native-cache" => args.native_cache = Some(value("--native-cache")?),
            "--cycles" => args.cycles = Some(parsed("--cycles", value("--cycles")?)?),
            "--program" => args.program = value("--program")?,
            "--vcd" => args.vcd = Some(value("--vcd")?),
            "--profile" => args.profile = true,
            "--trace" => args.trace = Some(parsed("--trace", value("--trace")?)?),
            "--emit" => args.emit = Some(value("--emit")?),
            "--metrics-json" => args.metrics_json = Some(value("--metrics-json")?),
            "--perfetto" => args.perfetto = Some(value("--perfetto")?),
            "--watch" => args.watch.push(value("--watch")?),
            "--inject" => args.inject = Some(value("--inject")?),
            "--campaign" => args.campaign = Some(parsed("--campaign", value("--campaign")?)?),
            "--fuzz" => args.fuzz = Some(parsed("--fuzz", value("--fuzz")?)?),
            "--batch" => args.batch = Some(parsed("--batch", value("--batch")?)?),
            "--jobs" => args.jobs = parsed("--jobs", value("--jobs")?)?,
            "--retries" => args.retries = parsed("--retries", value("--retries")?)?,
            "--corpus-dir" => args.corpus_dir = Some(value("--corpus-dir")?),
            "--replay-corpus" => args.replay_corpus = Some(value("--replay-corpus")?),
            "--seed" => {
                let v = value("--seed")?;
                args.seed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16)
                        .map_err(|_| Err(CliError::usage(format!("bad value {v:?} for --seed"))))?,
                    None => parsed("--seed", v)?,
                };
            }
            "--max-injections" => {
                args.max_injections = parsed("--max-injections", value("--max-injections")?)?;
            }
            "--record" => args.record = Some(value("--record")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--snapshot-every" => {
                args.snapshot_every = Some(parsed("--snapshot-every", value("--snapshot-every")?)?);
            }
            "--snapshot-prefix" => args.snapshot_prefix = Some(value("--snapshot-prefix")?),
            "--restore" => args.restore = Some(value("--restore")?),
            "--max-cycles" => args.max_cycles = Some(parsed("--max-cycles", value("--max-cycles")?)?),
            "--stall-cycles" => {
                args.stall_cycles = Some(parsed("--stall-cycles", value("--stall-cycles")?)?);
            }
            "--max-wall-ms" => {
                args.max_wall_ms = Some(parsed("--max-wall-ms", value("--max-wall-ms")?)?);
            }
            "--debug" => args.debug = true,
            "--debug-script" => args.debug_script = Some(value("--debug-script")?),
            "--debug-on-divergence" => args.debug_on_divergence = true,
            "--vcd-lane" => args.vcd_lane = Some(parsed("--vcd-lane", value("--vcd-lane")?)?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--max-sessions" => {
                args.max_sessions = Some(parsed("--max-sessions", value("--max-sessions")?)?);
            }
            "--state-dir" => args.state_dir = Some(value("--state-dir")?),
            "--help" | "-h" => {
                print!("{HELP}");
                return Err(Ok(ExitCode::SUCCESS));
            }
            other => return Err(Err(CliError::usage(format!("unknown option {other}")))),
        }
    }
    Ok(args)
}

fn design_by_name(name: &str) -> Option<Design> {
    Some(match name {
        "collatz" => small::collatz(),
        "fir" => small::fir(),
        "fft" => small::fft(),
        "rv32i" => rv32::rv32i(),
        "rv32e" => rv32::rv32e(),
        "rv32i-bp" => rv32::rv32i_bp(),
        "rv32i-bypass" => rv32::rv32i_bypass(),
        "rv32i-x0bug" => rv32::rv32i_x0bug(),
        "msi" => msi::msi_system(),
        "msi-buggy" => msi::msi_system_buggy(),
        _ => return None,
    })
}

fn workload(spec: &str) -> Option<Vec<u32>> {
    let (kind, n) = spec.split_once(':')?;
    let n: u32 = n.parse().ok()?;
    Some(match kind {
        "primes" => programs::primes(n),
        "nops" => programs::nops(n as usize),
        "branchy" => programs::branchy(n),
        _ => return None,
    })
}

/// Everything `validate` resolves up front so the run phases can't hit a
/// bad-input error (or a panic) halfway through.
struct Plan {
    td: TDesign,
    level: OptLevel,
    dispatch: Dispatch,
    program: Option<Vec<u32>>,
    injections: Vec<Injection>,
    watch: Vec<(koika::RegId, String)>,
    snapshot_prefix: String,
    stall_cycles: u64,
}

/// Validates flag *combinations* and cross-references against the design —
/// the single place a bad invocation is rejected, before any simulator is
/// built.
fn validate(args: &Args) -> Result<Plan, CliError> {
    let design = design_by_name(&args.design)
        .ok_or_else(|| CliError::usage(format!("unknown design {:?}", args.design)))?;
    let td = check(&design).map_err(|e| CliError::runtime(format!("design error: {e}")))?;

    match args.backend.as_str() {
        "interp" | "cuttlesim" | "rtl" | "rtl-static" => {}
        other => return Err(CliError::usage(format!("unknown backend {other:?}"))),
    }
    let level = OptLevel::from_number(args.level)
        .ok_or_else(|| CliError::usage(format!("bad --level {}: expected 1..6", args.level)))?;
    let dispatch = match args.dispatch.as_deref() {
        None => Dispatch::Match,
        Some(name) => Dispatch::from_name(name).ok_or_else(|| {
            CliError::usage(format!(
                "bad --dispatch {name:?}: expected match, closure, tac, or native"
            ))
        })?,
    };
    if dispatch == Dispatch::Native && !cuttlesim::toolchain_available() {
        return Err(CliError::usage(
            "--dispatch native requires a rustc toolchain, and none was found \
             (install rustc or point KOIKA_RUSTC at one); the match, closure, \
             and tac dispatchers work without a toolchain",
        ));
    }
    if dispatch != Dispatch::Match && args.backend != "cuttlesim" {
        return Err(CliError::usage(format!(
            "--dispatch {} requires the cuttlesim backend (got {:?})",
            dispatch.short_name(),
            args.backend
        )));
    }
    if let Some(what) = &args.emit {
        if !matches!(what.as_str(), "cpp" | "cpp-header" | "verilog") {
            return Err(CliError::usage(format!(
                "bad --emit {what:?}: expected cpp, cpp-header, or verilog"
            )));
        }
    }

    // Mutually exclusive run modes, rejected together so the user sees the
    // conflict rather than one mode silently winning.
    let modes: Vec<&str> = [
        args.emit.as_ref().map(|_| "--emit"),
        args.campaign.map(|_| "--campaign"),
        args.replay.as_ref().map(|_| "--replay"),
    ]
    .into_iter()
    .flatten()
    .collect();
    if modes.len() > 1 {
        return Err(CliError::usage(format!(
            "conflicting modes: {} cannot be combined",
            modes.join(" and ")
        )));
    }
    if args.record.is_some() && args.campaign.is_none() {
        return Err(CliError::usage("--record requires --campaign"));
    }
    if args.jobs == 0 {
        return Err(CliError::usage("--jobs must be at least 1"));
    }
    if args.batch.is_some() {
        if args.backend != "cuttlesim" {
            return Err(CliError::usage(format!(
                "--batch requires the cuttlesim backend (got {:?})",
                args.backend
            )));
        }
        if args.replay.is_some() {
            return Err(CliError::usage("--batch cannot be combined with --replay"));
        }
        // The batched engine has no per-lane trace/profile/snapshot
        // machinery; in a normal (non-campaign) run those flags would
        // silently observe nothing, so they are rejected outright.
        // (`--vcd` *is* supported: it records the `--vcd-lane` lane.)
        if args.campaign.is_none() {
            let incompatible: Vec<&str> = [
                args.emit.as_ref().map(|_| "--emit"),
                args.trace.map(|_| "--trace"),
                args.profile.then_some("--profile"),
                args.inject.as_ref().map(|_| "--inject"),
                args.restore.as_ref().map(|_| "--restore"),
                args.snapshot_every.map(|_| "--snapshot-every"),
                (!args.watch.is_empty()).then_some("--watch"),
                args.perfetto.as_ref().map(|_| "--perfetto"),
            ]
            .into_iter()
            .flatten()
            .collect();
            if !incompatible.is_empty() {
                return Err(CliError::usage(format!(
                    "--batch cannot be combined with {}",
                    incompatible.join(", ")
                )));
            }
        }
    }
    if let Some(lane) = args.vcd_lane {
        let width = match args.batch {
            None => return Err(CliError::usage("--vcd-lane requires --batch")),
            Some(w) => w,
        };
        if args.vcd.is_none() {
            return Err(CliError::usage("--vcd-lane requires --vcd"));
        }
        if lane >= width {
            return Err(CliError::usage(format!(
                "--vcd-lane {lane} is out of range for --batch {width}"
            )));
        }
    }
    if args.debug_requested() {
        if args.debug && args.debug_script.is_some() {
            return Err(CliError::usage(
                "--debug and --debug-script cannot be combined",
            ));
        }
        // The debugger owns the run loop: observability sinks, injections,
        // and the snapshot/waveform writers of a normal run would either
        // see nothing or fight the time-travel replays. The debugger's own
        // `dump-vcd` / `snapshot` / `info rules` commands replace them.
        let conflicts: Vec<&str> = [
            args.emit.as_ref().map(|_| "--emit"),
            args.campaign.map(|_| "--campaign"),
            args.replay.as_ref().map(|_| "--replay"),
            args.inject.as_ref().map(|_| "--inject"),
            args.trace.map(|_| "--trace"),
            args.profile.then_some("--profile"),
            args.vcd.as_ref().map(|_| "--vcd"),
            args.snapshot_every.map(|_| "--snapshot-every"),
            args.metrics_json.as_ref().map(|_| "--metrics-json"),
            args.perfetto.as_ref().map(|_| "--perfetto"),
            (!args.watch.is_empty()).then_some("--watch"),
        ]
        .into_iter()
        .flatten()
        .collect();
        if !conflicts.is_empty() {
            return Err(CliError::usage(format!(
                "--debug cannot be combined with {} (use the debugger's own \
                 commands instead)",
                conflicts.join(", ")
            )));
        }
    }
    if args.inject.is_some() && (args.campaign.is_some() || args.replay.is_some()) {
        return Err(CliError::usage(
            "--inject cannot be combined with --campaign or --replay (they draw \
             their own schedules)",
        ));
    }
    // Trace and profile replay the run without injections or restored
    // state, so combining them would silently show a different execution.
    for (on, flag) in [(args.trace.is_some(), "--trace"), (args.profile, "--profile")] {
        if !on {
            continue;
        }
        if args.inject.is_some() || args.restore.is_some() {
            return Err(CliError::usage(format!(
                "{flag} replays the run from reset and cannot be combined with \
                 --inject or --restore"
            )));
        }
    }
    if args.max_injections == 0 {
        return Err(CliError::usage("--max-injections must be at least 1"));
    }
    if args.snapshot_every == Some(0) {
        return Err(CliError::usage("--snapshot-every must be at least 1"));
    }
    if args.stall_cycles == Some(0) {
        return Err(CliError::usage("--stall-cycles must be at least 1"));
    }

    // Fault classification compares 64-bit register values.
    if args.inject.is_some() || args.campaign.is_some() || args.replay.is_some() {
        if let Some(r) = td.regs.iter().find(|r| r.width > 64) {
            return Err(CliError::usage(format!(
                "fault injection requires <=64-bit registers; design {} has {} ({} bits)",
                td.name, r.name, r.width
            )));
        }
    }

    // Core workloads parse up front (only rv32 designs take one).
    let program = if args.design.starts_with("rv32") {
        Some(
            workload(&args.program)
                .ok_or_else(|| CliError::usage(format!("bad --program spec {:?}", args.program)))?,
        )
    } else {
        None
    };

    // --inject: either one-or-more explicit specs, or a bare seed.
    let mut injections = Vec::new();
    if let Some(spec) = &args.inject {
        if let Ok(seed) = spec.parse::<u64>() {
            let cfg = CampaignConfig {
                seed,
                cycles: args.run_cycles(),
                max_injections: args.max_injections,
                ..CampaignConfig::default()
            };
            injections = draw_schedule(&td, &cfg, 0);
        } else {
            injections.push(Injection::parse(spec, &td).map_err(CliError::Usage)?);
        }
    }

    let mut watch = Vec::new();
    for name in &args.watch {
        let i = td
            .regs
            .iter()
            .position(|r| &r.name == name)
            .ok_or_else(|| CliError::usage(format!("unknown register {name:?} in --watch")))?;
        watch.push((koika::RegId(i as u32), name.clone()));
    }

    let snapshot_prefix = args
        .snapshot_prefix
        .clone()
        .unwrap_or_else(|| format!("{}-", args.design));
    let stall_cycles = args.stall_cycles.unwrap_or(256);

    Ok(Plan {
        td,
        level,
        dispatch,
        program,
        injections,
        watch,
        snapshot_prefix,
        stall_cycles,
    })
}

fn build_sim(
    td: &TDesign,
    backend: &str,
    level: OptLevel,
    dispatch: Dispatch,
    profile: bool,
) -> Result<Box<dyn SimBackend>, CliError> {
    Ok(match backend {
        "interp" => Box::new(koika::Interp::new(td)),
        "cuttlesim" => {
            let mut sim = Sim::compile_with(
                td,
                &CompileOptions {
                    level,
                    ..CompileOptions::default()
                },
            )
            .map_err(|e| CliError::runtime(format!("cuttlesim compile error: {e}")))?;
            sim.try_set_dispatch(dispatch).map_err(|e| {
                CliError::usage(format!(
                    "cannot select {} dispatch: {e} (install rustc or point \
                     KOIKA_RUSTC at one)",
                    dispatch.short_name()
                ))
            })?;
            if profile {
                sim.enable_profiling();
            }
            Box::new(sim)
        }
        "rtl" => Box::new(RtlSim::new(
            rtl_compile(td, Scheme::Dynamic)
                .map_err(|e| CliError::runtime(format!("rtl error: {e}")))?,
        )),
        "rtl-static" => Box::new(RtlSim::new(
            rtl_compile(td, Scheme::Static)
                .map_err(|e| CliError::runtime(format!("rtl error: {e}")))?,
        )),
        other => return Err(CliError::usage(format!("unknown backend {other:?}"))),
    })
}

fn build_devices(td: &TDesign, program: &Option<Vec<u32>>) -> Vec<Box<dyn Device>> {
    match program {
        Some(words) => vec![Box::new(MagicMemory::new(
            td,
            &["imem", "dmem"],
            words,
            MEM_WORDS,
        ))],
        None => Vec::new(),
    }
}

/// Serves the bundled designs to `--serve` sessions. A session's design
/// name is either a bare design (`"msi"`, `"rv32i"`) or
/// `design+workload` (`"rv32i+primes:8"`), where the workload seeds the
/// magic memories exactly as `--program` does for a one-shot run; a bare
/// rv32 design gets the CLI's default workload. Typed designs and decoded
/// workloads are cached because [`DesignProvider::devices`] runs on every
/// step of every session.
#[derive(Default)]
struct BundledDesigns {
    designs: std::sync::Mutex<std::collections::HashMap<String, Arc<TDesign>>>,
    programs: std::sync::Mutex<std::collections::HashMap<String, Arc<Vec<u32>>>>,
}

/// Splits `rv32i+primes:8` into the design and the workload spec.
fn split_served_name(name: &str) -> (&str, Option<&str>) {
    match name.split_once('+') {
        Some((base, spec)) => (base, Some(spec)),
        None => (name, None),
    }
}

impl BundledDesigns {
    fn program_words(&self, spec: &str) -> Option<Arc<Vec<u32>>> {
        let mut cache = self
            .programs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(words) = cache.get(spec) {
            return Some(Arc::clone(words));
        }
        let words = Arc::new(workload(spec)?);
        cache.insert(spec.to_string(), Arc::clone(&words));
        Some(words)
    }
}

impl DesignProvider for BundledDesigns {
    fn design(&self, name: &str) -> Option<Arc<TDesign>> {
        let (base, spec) = split_served_name(name);
        if let Some(spec) = spec {
            // Only the rv32 cores take a workload, and it must parse, so
            // `create` rejects bad names up front instead of a session
            // stalling on empty memories later.
            if !base.starts_with("rv32") || self.program_words(spec).is_none() {
                return None;
            }
        }
        let mut cache = self
            .designs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(td) = cache.get(base) {
            return Some(Arc::clone(td));
        }
        let td = Arc::new(check(&design_by_name(base)?).ok()?);
        cache.insert(base.to_string(), Arc::clone(&td));
        Some(td)
    }

    fn devices(&self, name: &str, td: &TDesign) -> Vec<Box<dyn Device + Send>> {
        let (base, spec) = split_served_name(name);
        if !base.starts_with("rv32") {
            return Vec::new();
        }
        let words = spec
            .and_then(|s| self.program_words(s))
            .or_else(|| self.program_words("primes:100"))
            .unwrap_or_default();
        vec![Box::new(MagicMemory::new(td, &["imem", "dmem"], &words, MEM_WORDS))]
    }
}

/// `--serve`: run the session server until a client sends `shutdown`.
fn run_serve_mode(args: &Args, addr: &str) -> Result<ExitCode, CliError> {
    // The server multiplexes many sessions that each pick their own
    // design, program, backend, and budgets in `create`, so every
    // one-shot run or sink flag is rejected rather than silently
    // observing nothing. Only the pool/watchdog tuning flags compose.
    let conflicts: Vec<&str> = [
        args.campaign.map(|_| "--campaign"),
        args.fuzz.map(|_| "--fuzz"),
        args.replay_corpus.as_ref().map(|_| "--replay-corpus"),
        args.replay.as_ref().map(|_| "--replay"),
        args.emit.as_ref().map(|_| "--emit"),
        args.batch.map(|_| "--batch"),
        args.debug.then_some("--debug"),
        args.debug_script.as_ref().map(|_| "--debug-script"),
        args.debug_on_divergence.then_some("--debug-on-divergence"),
        args.inject.as_ref().map(|_| "--inject"),
        args.trace.map(|_| "--trace"),
        args.profile.then_some("--profile"),
        args.vcd.as_ref().map(|_| "--vcd"),
        args.vcd_lane.map(|_| "--vcd-lane"),
        args.record.as_ref().map(|_| "--record"),
        args.snapshot_every.map(|_| "--snapshot-every"),
        args.snapshot_prefix.as_ref().map(|_| "--snapshot-prefix"),
        args.restore.as_ref().map(|_| "--restore"),
        args.corpus_dir.as_ref().map(|_| "--corpus-dir"),
        (!args.watch.is_empty()).then_some("--watch"),
        args.metrics_json.as_ref().map(|_| "--metrics-json"),
        args.perfetto.as_ref().map(|_| "--perfetto"),
        args.cycles.map(|_| "--cycles"),
    ]
    .into_iter()
    .flatten()
    .collect();
    if !conflicts.is_empty() {
        return Err(CliError::usage(format!(
            "--serve cannot be combined with {} (sessions pick their own \
             designs, programs, and budgets in `create`)",
            conflicts.join(", ")
        )));
    }
    if !args.design.is_empty() {
        return Err(CliError::usage(format!(
            "--serve does not take a <design> argument (got {:?}; clients \
             name designs in `create`)",
            args.design
        )));
    }
    if args.jobs == 0 {
        return Err(CliError::usage("--jobs must be at least 1"));
    }
    if args.max_sessions == Some(0) {
        return Err(CliError::usage("--max-sessions must be at least 1"));
    }
    if args.stall_cycles == Some(0) {
        return Err(CliError::usage("--stall-cycles must be at least 1"));
    }

    let mut cfg = ServerConfig {
        runner: args.runner_config(),
        default_watchdog: Watchdog {
            max_cycles: args.max_cycles,
            stall_cycles: args.stall_cycles,
            wall_budget: args.max_wall_ms.map(Duration::from_millis),
        },
        ..ServerConfig::default()
    };
    if let Some(n) = args.max_sessions {
        cfg.max_sessions = n;
    }
    if let Some(dir) = &args.state_dir {
        cfg.state_dir = Some(std::path::PathBuf::from(dir));
    }
    let handle = koika_server::spawn(cfg, Arc::new(BundledDesigns::default()), addr)
        .map_err(|e| CliError::runtime(format!("cannot serve on {addr}: {e}")))?;
    if args.state_dir.is_some() {
        // Scripts (and the CI kill -9 soak) parse this line.
        println!(
            "recovered {} sessions ({} lost)",
            handle.recovered_sessions(),
            handle.lost_sessions()
        );
    }
    // Scripts parse this line to learn the bound port (`--serve 127.0.0.1:0`).
    println!("serving on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = handle.wait();
    eprintln!(
        "drained: {} requests, {} protocol errors, {} sessions spilled, {} panics contained",
        stats.requests, stats.protocol_errors, stats.sessions_spilled, stats.panics_contained
    );
    Ok(ExitCode::SUCCESS)
}

fn write_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    std::fs::write(path, bytes).map_err(|e| CliError::runtime(format!("failed to write {path}: {e}")))
}

/// The stderr progress reporter shared by `--campaign` and `--fuzz`: one
/// carriage-return-free line per finished job (cheap enough at campaign
/// scale, and CI logs stay readable), plus retry notices. Also feeds the
/// runner counters of an optional [`Metrics`] sink.
fn report_progress<'a>(
    what: &'a str,
    metrics: Option<&'a mut Metrics>,
) -> impl FnMut(JobUpdate) + 'a {
    let mut metrics = metrics;
    move |u| match u {
        JobUpdate::Finished {
            index,
            attempts,
            panicked,
            done,
            total,
        } => {
            if let Some(m) = metrics.as_deref_mut() {
                m.job_finished(index, attempts, panicked);
            }
            eprintln!("{what}: {done}/{total} done");
        }
        JobUpdate::Retrying {
            index,
            attempt,
            reason,
        } => {
            eprintln!("{what}: member {index} retry {attempt}: {reason}");
        }
    }
}

fn print_runner_stats(what: &str, stats: &RunnerStats) {
    eprintln!(
        "{what}: {} jobs, {} panics contained, {} retries",
        stats.total, stats.panics_contained, stats.retries
    );
}

fn run_campaign_mode(args: &Args, plan: &Plan, members: usize) -> Result<ExitCode, CliError> {
    let td = &plan.td;
    let cfg = CampaignConfig {
        seed: args.seed,
        members,
        cycles: args.run_cycles(),
        max_injections: args.max_injections,
        stall_cycles: plan.stall_cycles,
    };
    let backend = args.backend.clone();
    let level = plan.level;
    let dispatch = plan.dispatch;
    let make_sim = move |td: &TDesign| {
        build_sim(td, &backend, level, dispatch, false).map_err(|e| match e {
            CliError::Usage(m) | CliError::Runtime(m) => m,
        })
    };
    let td2 = td.clone();
    let make_sim = move || make_sim(&td2);
    let program = plan.program.clone();
    let td3 = td.clone();
    let make_devices = move || build_devices(&td3, &program);
    let env = ParallelFactories {
        td,
        make_sim: &make_sim,
        make_devices: &make_devices,
    };
    let opts = ParallelOptions {
        runner: args.runner_config(),
        wall_budget: args.max_wall_ms.map(Duration::from_millis),
    };
    let mut metrics = args.metrics_json.as_ref().map(|_| Metrics::for_design(td));
    let mut progress = report_progress("campaign", metrics.as_mut());
    let (report, stats) = match args.batch {
        // Batched mode: each worker job drives one SoA batch whose lanes
        // are consecutive campaign members. The report is byte-identical
        // to the scalar path (validate() pinned the cuttlesim backend).
        Some(width) => {
            let level = plan.level;
            let dispatch = plan.dispatch;
            let td4 = td.clone();
            let make_batch = move |lanes: usize| {
                BatchSim::compile_with(
                    &td4,
                    &CompileOptions {
                        level,
                        ..CompileOptions::default()
                    },
                    lanes,
                )
                .map(|mut s| {
                    s.set_dispatch(dispatch);
                    Box::new(s) as Box<dyn BatchBackend>
                })
                .map_err(|e| e.to_string())
            };
            run_campaign_batched(&env, &make_batch, width, &cfg, &opts, Some(&mut progress))
                .map_err(|e| CliError::runtime(e.to_string()))?
        }
        None => run_campaign_parallel(&env, &cfg, &opts, Some(&mut progress))
            .map_err(|e| CliError::runtime(e.to_string()))?,
    };
    drop(progress);
    print_runner_stats("campaign", &stats);
    print!("{}", report.summary());
    if let Some(path) = &args.record {
        // Only designs that take a workload record one (others replay with
        // no devices).
        let program = if plan.program.is_some() { args.program.as_str() } else { "" };
        let log = report.to_replay_log(&args.backend, args.level, program);
        write_file(path, log.to_text().as_bytes())?;
        eprintln!(
            "wrote replay log ({} failing members) to {path}",
            log.members.len()
        );
    }
    if let (Some(path), Some(m)) = (&args.metrics_json, &metrics) {
        write_file(path, m.to_json(true).as_bytes())?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// The debugger's command stream: an optional synthetic preamble, then
/// the `--debug-script` file (script mode) or stdin (interactive).
fn open_debug_input(args: &Args, preamble: Option<String>) -> Result<Box<dyn BufRead>, CliError> {
    let inner: Box<dyn BufRead> = match &args.debug_script {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| {
                CliError::runtime(format!("failed to open --debug-script {path}: {e}"))
            })?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    Ok(match preamble {
        Some(text) => Box::new(std::io::Cursor::new(text.into_bytes()).chain(inner)),
        None => inner,
    })
}

/// `--debug` / `--debug-script`: build the requested engine (scalar or
/// batched), attach the time-travel debugger, and hand it the run loop.
/// Watchdog trips are reported in-band at the paused prompt instead of
/// exiting 3 — a run paused under a debugger is not a hang.
fn run_debug_mode(args: &Args, plan: &Plan) -> Result<ExitCode, CliError> {
    let td = &plan.td;
    let opts = DebugOptions {
        limit: args.run_cycles(),
        echo: args.debug_script.is_some(),
        prompt: args.debug_script.is_none(),
    };
    let watchdog = Watchdog {
        max_cycles: args.max_cycles,
        stall_cycles: args.stall_cycles,
        wall_budget: args.max_wall_ms.map(Duration::from_millis),
    };
    let wd_wanted =
        args.max_cycles.is_some() || args.stall_cycles.is_some() || args.max_wall_ms.is_some();
    let mut armed = watchdog.arm();
    let mut input = open_debug_input(args, None)?;
    let mut out = std::io::stdout().lock();
    match args.batch {
        Some(width) => {
            let mut batch = BatchSim::compile_with(
                td,
                &CompileOptions {
                    level: plan.level,
                    ..CompileOptions::default()
                },
                width,
            )
            .map_err(|e| CliError::runtime(format!("cuttlesim compile error: {e}")))?;
            batch.set_dispatch(plan.dispatch);
            let lane_devices: Vec<Vec<Box<dyn Device>>> =
                (0..width).map(|_| build_devices(td, &plan.program)).collect();
            let mut target = BatchTarget::new(td, Box::new(batch), lane_devices)
                .map_err(CliError::runtime)?;
            koika::debug::run_session(
                td,
                &mut target,
                &mut *input,
                &mut out,
                wd_wanted.then_some(&mut armed),
                &opts,
            )
        }
        None => {
            let mut sim = build_sim(td, &args.backend, plan.level, plan.dispatch, false)?;
            if let Some(path) = &args.restore {
                let bytes = std::fs::read(path)
                    .map_err(|e| CliError::runtime(format!("failed to read {path}: {e}")))?;
                let snap = Snapshot::from_bytes(&bytes)
                    .map_err(|e| CliError::runtime(format!("bad snapshot {path}: {e}")))?;
                sim.restore(&snap)
                    .map_err(|e| CliError::runtime(format!("cannot restore {path}: {e}")))?;
                println!("restored {} at cycle {} from {path}", snap.design, snap.cycles);
            }
            let devices = build_devices(td, &plan.program);
            let mut target = ScalarTarget::new(sim, devices);
            koika::debug::run_session(
                td,
                &mut target,
                &mut *input,
                &mut out,
                wd_wanted.then_some(&mut armed),
                &opts,
            )
        }
    }
    .map_err(|e| CliError::runtime(format!("debugger I/O error: {e}")))?;
    Ok(ExitCode::SUCCESS)
}

/// `--debug-on-divergence`, shared tail: print both register files side by
/// side, then attach the debugger to the diverging backend with an
/// automatic `run-to` at the first divergent cycle boundary.
fn debug_divergence(args: &Args, div: &fuzz::Divergence, cycles: u64) -> Result<(), CliError> {
    let td = &div.td;
    println!(
        "divergence: seed {:#x}, backend {} first differs from interp after cycle {}",
        div.seed, div.backend, div.cycle
    );
    println!("  {:<16} {:>18} {:>18}", "reg", "interp", div.backend);
    for (i, r) in td.regs.iter().enumerate() {
        let a = div.interp_regs[i];
        let b = div.backend_regs[i];
        let marker = if a == b { "" } else { "  <-- differs" };
        println!(
            "  {:<16} {:>18} {:>18}{marker}",
            r.name,
            format!("{a:#x}"),
            format!("{b:#x}")
        );
    }
    let sim = fuzz::build_backend_by_label(td, &div.backend).map_err(CliError::runtime)?;
    let mut target = ScalarTarget::new(sim, Vec::new());
    let mut input = open_debug_input(args, Some(format!("run-to {}\n", div.cycle + 1)))?;
    let mut out = std::io::stdout().lock();
    let opts = DebugOptions {
        limit: cycles,
        echo: args.debug_script.is_some(),
        prompt: args.debug_script.is_none(),
    };
    koika::debug::run_session(td, &mut target, &mut *input, &mut out, None, &opts)
        .map_err(|e| CliError::runtime(format!("debugger I/O error: {e}")))
}

/// `--debug-on-divergence` for `--fuzz`: scan the report's (shrunk) bucket
/// reproducers first, then fall back to the raw per-case seeds — the
/// fallback catches `rtl-static` divergences, which the fuzz matrix
/// deliberately never trace-compares.
fn debug_first_fuzz_divergence(args: &Args, report: &fuzz::FuzzReport) -> Result<(), CliError> {
    for b in report.buckets.iter().filter(|b| b.class == "mismatch") {
        if let Some(div) =
            fuzz::scan_divergence(b.repro_seed, b.repro_cycles).map_err(CliError::runtime)?
        {
            return debug_divergence(args, &div, b.repro_cycles);
        }
    }
    let cycles = args.cycles.unwrap_or(96);
    for i in 0..args.fuzz.unwrap_or(0) {
        let seed = fuzz::case_seed(args.seed, i);
        if let Some(div) = fuzz::scan_divergence(seed, cycles).map_err(CliError::runtime)? {
            return debug_divergence(args, &div, cycles);
        }
    }
    eprintln!("debug-on-divergence: no register-state divergence found");
    Ok(())
}

fn run_fuzz_mode(args: &Args) -> Result<ExitCode, CliError> {
    let cases = args.fuzz.unwrap_or(0);
    // No --dispatch under --fuzz means the full matrix (all four
    // dispatchers per VM level), not the scalar default of Match.
    let dispatch = match args.dispatch.as_deref() {
        None => None,
        Some(name) => Some(Dispatch::from_name(name).ok_or_else(|| {
            CliError::usage(format!(
                "bad --dispatch {name:?}: expected match, closure, tac, or native"
            ))
        })?),
    };
    if !cuttlesim::toolchain_available() {
        // An explicit `--dispatch native` request with no toolchain is a
        // loud no-op (exit 0, nothing silently substituted) so CI can run
        // the native smoke unconditionally; a default-matrix run proceeds
        // with native excluded, but says so.
        if dispatch == Some(Dispatch::Native) {
            eprintln!(
                "SKIP: --fuzz --dispatch native requires a rustc toolchain, and none \
                 was found (install rustc or point KOIKA_RUSTC at one); no cases run"
            );
            return Ok(ExitCode::SUCCESS);
        }
        if dispatch.is_none() {
            eprintln!(
                "note: no rustc toolchain found; the native dispatcher is excluded \
                 from the fuzz comparison matrix (18 backends instead of 24)"
            );
        }
    }
    let cfg = cuttlesim_repro::fuzz::FuzzConfig {
        seed: args.seed,
        cases,
        cycles: args.cycles.unwrap_or(96),
        runner: args.runner_config(),
        wall_budget: args.max_wall_ms.map(Duration::from_millis),
        batch: args.batch.unwrap_or(0),
        dispatch,
    };
    let mut metrics = args
        .metrics_json
        .as_ref()
        .map(|_| Metrics::new("fuzz", Vec::new(), Vec::new()));
    let mut progress = report_progress("fuzz", metrics.as_mut());
    let (report, stats) = cuttlesim_repro::fuzz::run_fuzz(&cfg, Some(&mut progress));
    drop(progress);
    print_runner_stats("fuzz", &stats);
    print!("{}", report.summary());
    if let Some(dir) = &args.corpus_dir {
        if report.buckets.is_empty() {
            eprintln!("no buckets; corpus dir {dir} left untouched");
        } else {
            let paths = cuttlesim_repro::fuzz::write_corpus(std::path::Path::new(dir), &report)
                .map_err(|e| CliError::runtime(format!("failed to write corpus: {e}")))?;
            for p in &paths {
                eprintln!("wrote reproducer {}", p.display());
            }
        }
    }
    if let (Some(path), Some(m)) = (&args.metrics_json, &metrics) {
        write_file(path, m.to_json(true).as_bytes())?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if args.debug_on_divergence {
        debug_first_fuzz_divergence(args, &report)?;
    }
    if report.buckets.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn run_replay_corpus_mode(args: &Args, dir: &str) -> Result<ExitCode, CliError> {
    if !cuttlesim::toolchain_available() {
        eprintln!(
            "note: no rustc toolchain found; the native dispatcher is excluded \
             from the replay comparison matrix"
        );
    }
    let results = cuttlesim_repro::fuzz::replay_corpus_dir(std::path::Path::new(dir))
        .map_err(|e| CliError::runtime(format!("cannot read corpus dir {dir}: {e}")))?;
    if results.is_empty() {
        eprintln!("no *.fuzz entries in {dir}");
    }
    let mut failed = 0usize;
    for (path, outcome) in &results {
        match outcome {
            Ok(()) => println!("corpus {}: ok", path.display()),
            Err(msg) => {
                println!("corpus {}: FAILED — {msg}", path.display());
                failed += 1;
            }
        }
    }
    println!("corpus replay: {}/{} ok", results.len() - failed, results.len());
    if args.debug_on_divergence {
        // Re-scan the entries in path order with the *full* comparison
        // matrix (including rtl-static, which replay never trace-compares)
        // and attach the debugger at the first divergence found.
        let mut attached = false;
        for (path, _) in &results {
            let Ok(text) = std::fs::read_to_string(path) else {
                continue;
            };
            let Ok(entry) = fuzz::CorpusEntry::from_text(&text) else {
                continue;
            };
            if let Some(div) =
                fuzz::scan_divergence(entry.seed, entry.cycles).map_err(CliError::runtime)?
            {
                println!("divergence in {}:", path.display());
                debug_divergence(args, &div, entry.cycles)?;
                attached = true;
                break;
            }
        }
        if !attached {
            eprintln!("debug-on-divergence: no register-state divergence found in {dir}");
        }
    }
    if failed == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn run_replay_mode(args: &Args, plan: &Plan, path: &str) -> Result<ExitCode, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("failed to read {path}: {e}")))?;
    let log = ReplayLog::from_text(&text).map_err(CliError::Runtime)?;
    if log.design != args.design {
        return Err(CliError::usage(format!(
            "replay log {path} records design {:?}, but {:?} was requested",
            log.design, args.design
        )));
    }
    // The log's recorded environment wins over CLI defaults: backend,
    // level, workload, and cycle count all come from the recording.
    let level = OptLevel::from_number(log.level).unwrap_or_else(OptLevel::max);
    let program = if log.program.is_empty() || !args.design.starts_with("rv32") {
        None
    } else {
        Some(
            workload(&log.program)
                .ok_or_else(|| CliError::runtime(format!("bad program {:?} in replay log", log.program)))?,
        )
    };
    let td = &plan.td;
    let backend = log.backend.clone();
    let dispatch = plan.dispatch;
    let td2 = td.clone();
    let mut make_sim = move || {
        build_sim(&td2, &backend, level, dispatch, false).unwrap_or_else(|e| {
            match e {
                CliError::Usage(m) | CliError::Runtime(m) => eprintln!("{m}"),
            }
            std::process::exit(1);
        })
    };
    let td3 = td.clone();
    let mut make_devices = move || build_devices(&td3, &program);
    let mut engine = FaultEngine {
        td,
        make_sim: &mut make_sim,
        make_devices: &mut make_devices,
    };
    println!(
        "replaying {} members from {path} (design {}, backend {}, {} cycles)",
        log.members.len(),
        log.design,
        log.backend,
        log.cycles
    );
    let results = replay_campaign(&mut engine, &log).map_err(|e| CliError::runtime(e.to_string()))?;
    let mut reproduced = 0usize;
    for r in &results {
        let minimal = match &r.minimal {
            Some(inj) => format!("; minimal reproducer {}", inj.display_with(td)),
            None => String::new(),
        };
        println!(
            "  member {:>3}: recorded {}, observed {} — {}{}",
            r.member.index,
            r.member.outcome,
            r.observed,
            if r.reproduced { "reproduced" } else { "NOT reproduced" },
            minimal
        );
        reproduced += r.reproduced as usize;
    }
    println!("replay: {reproduced}/{} reproduced", results.len());
    if reproduced != results.len() {
        return Err(CliError::runtime("some members did not reproduce"));
    }
    Ok(ExitCode::SUCCESS)
}

/// A plain (non-campaign) run of `width` identical instances through the
/// batched lock-step engine: same design, same devices, same workload per
/// lane, with throughput reported in instance-cycles per second.
fn run_batched_normal_mode(args: &Args, plan: &Plan, width: usize) -> Result<ExitCode, CliError> {
    let td = &plan.td;
    let mut batch = BatchSim::compile_with(
        td,
        &CompileOptions {
            level: plan.level,
            ..CompileOptions::default()
        },
        width,
    )
    .map_err(|e| CliError::runtime(format!("cuttlesim compile error: {e}")))?;
    batch.set_dispatch(plan.dispatch);
    let mut lane_devices: Vec<Vec<Box<dyn Device>>> =
        (0..width).map(|_| build_devices(td, &plan.program)).collect();
    // VCD records one lane (--vcd-lane, default 0) with the same
    // device-tick/sample/cycle ordering as the scalar run loop.
    let vcd_lane = args.vcd_lane.unwrap_or(0);
    let mut vcd = args.vcd.as_ref().map(|_| VcdRecorder::all_registers(td));

    let watchdog = Watchdog {
        max_cycles: args.max_cycles,
        stall_cycles: args.stall_cycles,
        wall_budget: args.max_wall_ms.map(Duration::from_millis),
    };
    let mut armed = watchdog.arm();
    let mut trip: Option<WatchdogTrip> = None;
    let start = std::time::Instant::now();
    for _ in 0..args.run_cycles() {
        let cycle = batch.cycle_count();
        for (l, devices) in lane_devices.iter_mut().enumerate() {
            let mut access = LaneAccess::new(&mut batch, l);
            for d in devices.iter_mut() {
                d.tick(cycle, &mut access);
            }
        }
        if let Some(v) = &mut vcd {
            let mut access = LaneAccess::new(&mut batch, vcd_lane);
            v.tick(cycle, &mut access);
        }
        batch
            .cycle()
            .map_err(|e| CliError::runtime(format!("batched engine error: {e}")))?;
        let commits: u64 = (0..width).map(|l| batch.lane_commits(l).len() as u64).sum();
        if let Some(t) = armed.observe(batch.cycle_count(), commits) {
            trip = Some(t);
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let cycles_run = batch.cycle_count();
    let fired: u64 = (0..width).map(|l| batch.lane_fired(l)).sum();

    println!(
        "{}: {} cycles x {} lanes on {} in {:.3}s ({:.0} instance-cycles/s), {} rule commits",
        td.name,
        cycles_run,
        width,
        args.backend,
        elapsed,
        (cycles_run * width as u64) as f64 / elapsed.max(1e-9),
        fired,
    );
    println!(
        "  batch: {} lock-step rule steps, {} divergence fallbacks",
        batch.lockstep_rules(),
        batch.fallback_rules(),
    );
    if args.design.starts_with("rv32") {
        let retired = batch.lane_get64(0, td.reg_id("retired"));
        println!(
            "  lane 0 retired {} instructions (IPC {:.3}), pc = {:#x}",
            retired,
            retired as f64 / cycles_run.max(1) as f64,
            batch.lane_get64(0, td.reg_id("pc"))
        );
    }

    if let Some(path) = &args.metrics_json {
        // Aggregate the always-on per-lane counters, then attach the
        // batch section.
        let mut fired_per_rule = vec![0u64; td.rules.len()];
        let mut fails_per_rule = vec![0u64; td.rules.len()];
        for l in 0..width {
            for (i, v) in batch.lane_fired_per_rule(l).into_iter().enumerate() {
                fired_per_rule[i] += v;
            }
            for (i, v) in batch.lane_fails_per_rule(l).into_iter().enumerate() {
                fails_per_rule[i] += v;
            }
        }
        let mut m = Metrics::for_design(td);
        m.set_counts(&fired_per_rule, &fails_per_rule, cycles_run);
        m.set_batch(
            width as u64,
            batch.lockstep_rules(),
            batch.fallback_rules(),
        );
        write_file(path, m.to_json(false).as_bytes())?;
        println!("wrote metrics snapshot to {path}");
    }

    if let (Some(path), Some(v)) = (&args.vcd, &vcd) {
        let dump = v.finish(cycles_run);
        write_file(path, dump.as_bytes())?;
        println!("wrote {} bytes of VCD to {path}", dump.len());
    }

    if let Some(t) = trip {
        eprintln!("{t}");
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn run(args: &Args) -> Result<ExitCode, CliError> {
    // The native-dispatch artifact cache is configured through the
    // environment so every layer (scalar sims, batch engines, fuzz
    // workers) sees the same directory without threading a path through.
    if let Some(dir) = &args.native_cache {
        std::env::set_var("KOIKA_NATIVE_CACHE", dir);
    }
    // --batch 0 is rejected up front: it applies to every mode, including
    // the design-free ones dispatched below.
    if args.batch == Some(0) {
        return Err(CliError::usage("--batch must be at least 1"));
    }
    if args.batch.is_some() && args.replay_corpus.is_some() {
        return Err(CliError::usage(
            "--batch cannot be combined with --replay-corpus (corpus replay is scalar)",
        ));
    }
    if args.debug_on_divergence && args.fuzz.is_none() && args.replay_corpus.is_none() {
        return Err(CliError::usage(
            "--debug-on-divergence requires --fuzz or --replay-corpus",
        ));
    }
    // The server is its own design-free mode: sessions name designs over
    // the wire, so it dispatches before design validation like --fuzz.
    if let Some(addr) = &args.serve {
        return run_serve_mode(args, addr);
    }
    if args.state_dir.is_some() {
        return Err(CliError::usage("--state-dir requires --serve"));
    }
    if args.max_sessions.is_some() {
        return Err(CliError::usage("--max-sessions requires --serve"));
    }
    // Design-free modes dispatch before design validation. Their flag
    // conflicts are checked here; everything design-bound stays in
    // `validate`.
    if args.fuzz.is_some() || args.replay_corpus.is_some() {
        let conflicts: Vec<&str> = [
            args.fuzz.map(|_| "--fuzz"),
            args.replay_corpus.as_ref().map(|_| "--replay-corpus"),
            args.emit.as_ref().map(|_| "--emit"),
            args.campaign.map(|_| "--campaign"),
            args.replay.as_ref().map(|_| "--replay"),
            args.inject.as_ref().map(|_| "--inject"),
        ]
        .into_iter()
        .flatten()
        .collect();
        if conflicts.len() > 1 {
            return Err(CliError::usage(format!(
                "conflicting modes: {} cannot be combined",
                conflicts.join(" and ")
            )));
        }
        if !args.design.is_empty() {
            return Err(CliError::usage(format!(
                "{} does not take a <design> argument (got {:?})",
                conflicts[0], args.design
            )));
        }
        if args.jobs == 0 {
            return Err(CliError::usage("--jobs must be at least 1"));
        }
        if args.debug {
            return Err(CliError::usage(
                "--debug requires a <design>; with --fuzz/--replay-corpus use \
                 --debug-on-divergence",
            ));
        }
        if args.debug_script.is_some() && !args.debug_on_divergence {
            return Err(CliError::usage(
                "--debug-script with --fuzz/--replay-corpus requires \
                 --debug-on-divergence",
            ));
        }
        if args.fuzz.is_some() {
            return run_fuzz_mode(args);
        }
        if let Some(dir) = &args.replay_corpus {
            return run_replay_corpus_mode(args, dir);
        }
    }
    if args.design.is_empty() {
        return Err(CliError::usage(
            "missing <design> argument (or use --fuzz / --replay-corpus)",
        ));
    }
    if args.corpus_dir.is_some() && args.fuzz.is_none() {
        return Err(CliError::usage("--corpus-dir requires --fuzz"));
    }

    let plan = validate(args)?;
    let td = &plan.td;

    if let Some(what) = &args.emit {
        match what.as_str() {
            "cpp" => print!("{}", codegen_cpp::emit(td)),
            "cpp-header" => print!("{}", codegen_cpp::emit_runtime_header()),
            "verilog" => {
                let model = rtl_compile(td, Scheme::Dynamic)
                    .map_err(|e| CliError::runtime(format!("rtl error: {e}")))?;
                print!("{}", verilog::emit(&model));
            }
            _ => unreachable!("validated"),
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(n) = args.campaign {
        return run_campaign_mode(args, &plan, n);
    }
    if let Some(path) = &args.replay {
        return run_replay_mode(args, &plan, path);
    }
    if args.debug_requested() {
        return run_debug_mode(args, &plan);
    }
    if let Some(width) = args.batch {
        return run_batched_normal_mode(args, &plan, width);
    }

    // Normal run (possibly with injections, snapshots, and a watchdog).
    let mut devices = build_devices(td, &plan.program);
    let mut vcd = args.vcd.as_ref().map(|_| VcdRecorder::all_registers(td));
    let mut sim = build_sim(td, &args.backend, plan.level, plan.dispatch, args.profile)?;

    if let Some(path) = &args.restore {
        let bytes = std::fs::read(path)
            .map_err(|e| CliError::runtime(format!("failed to read {path}: {e}")))?;
        let snap = Snapshot::from_bytes(&bytes)
            .map_err(|e| CliError::runtime(format!("bad snapshot {path}: {e}")))?;
        sim.restore(&snap)
            .map_err(|e| CliError::runtime(format!("cannot restore {path}: {e}")))?;
        println!("restored {} at cycle {} from {path}", snap.design, snap.cycles);
    }

    // Observability sinks, attached only when asked for — unobserved runs
    // take the plain `cycle()` path below.
    let mut metrics = args.metrics_json.as_ref().map(|_| Metrics::for_design(td));
    let mut perfetto = args.perfetto.as_ref().map(|_| PerfettoTrace::for_design(td));
    let mut watch = if plan.watch.is_empty() {
        None
    } else {
        Some(RegWatch::printing(plan.watch.clone()))
    };
    // Injected runs also record commit fingerprints so the run can be
    // classified against a golden run afterwards.
    let mut fingerprint = (!plan.injections.is_empty()).then(CommitFingerprint::default);

    let watchdog = Watchdog {
        max_cycles: args.max_cycles,
        stall_cycles: args.stall_cycles,
        wall_budget: args.max_wall_ms.map(Duration::from_millis),
    };

    let start = std::time::Instant::now();
    let start_cycle = sim.cycle_count();
    let main_cycles = args.run_cycles().saturating_sub(args.trace.unwrap_or(0));
    let mut trip: Option<WatchdogTrip> = None;
    {
        let mut sinks: Vec<&mut dyn Observer> = Vec::new();
        if let Some(m) = &mut metrics {
            sinks.push(m);
        }
        if let Some(p) = &mut perfetto {
            sinks.push(p);
        }
        if let Some(w) = &mut watch {
            sinks.push(w);
        }
        if let Some(f) = &mut fingerprint {
            sinks.push(f);
        }
        let mut fan = if sinks.is_empty() {
            None
        } else {
            Some(Fanout::new(sinks))
        };
        let mut armed = watchdog.arm();
        for _ in 0..main_cycles {
            let cycle = sim.cycle_count();
            for d in devices.iter_mut() {
                d.tick(cycle, sim.as_reg_access());
            }
            if let Some(v) = &mut vcd {
                v.tick(cycle, sim.as_reg_access());
            }
            for inj in plan.injections.iter().filter(|i| i.cycle == cycle) {
                let regs = sim.as_reg_access();
                let old = regs.get64(inj.reg);
                let new = old ^ (1u64 << inj.bit);
                regs.set64(inj.reg, new);
                println!(
                    "injected SEU {} (value {old:#x} -> {new:#x})",
                    inj.display_with(td)
                );
                if let Some(f) = &mut fan {
                    f.fault_injected(cycle, inj.reg, inj.bit, old, new);
                }
            }
            let before = sim.rules_fired();
            match &mut fan {
                Some(f) => sim.cycle_obs(f),
                None => sim.cycle(),
            }
            let commits = sim.rules_fired().wrapping_sub(before);
            if let Some(k) = args.snapshot_every {
                let now = sim.cycle_count();
                if now % k == 0 {
                    let snap = sim.snapshot();
                    let path = format!("{}{now:08}.ksnap", plan.snapshot_prefix);
                    write_file(&path, &snap.to_bytes())?;
                    println!("wrote snapshot {path}");
                }
            }
            if let Some(t) = armed.observe(sim.cycle_count(), commits) {
                if let Some(f) = &mut fan {
                    f.watchdog_trip(t.cycle, &t.reason);
                }
                trip = Some(t);
                break;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let cycles_run = sim.cycle_count() - start_cycle;

    println!(
        "{}: {} cycles on {} in {:.3}s ({:.0} cycles/s), {} rule commits",
        td.name,
        sim.cycle_count(),
        args.backend,
        elapsed,
        cycles_run as f64 / elapsed.max(1e-9),
        sim.rules_fired()
    );

    // Design-specific summary lines.
    if args.design.starts_with("rv32") {
        let retired = sim.as_reg_access().get64(td.reg_id("retired"));
        println!(
            "  retired {} instructions (IPC {:.3}), pc = {:#x}",
            retired,
            retired as f64 / sim.cycle_count().max(1) as f64,
            sim.as_reg_access().get64(td.reg_id("pc"))
        );
    }

    // Classify an injected run against a fresh golden run.
    if let Some(fp) = &fingerprint {
        let backend = args.backend.clone();
        let level = plan.level;
        let dispatch = plan.dispatch;
        let td2 = td.clone();
        let mut make_sim = move || {
            build_sim(&td2, &backend, level, dispatch, false).unwrap_or_else(|e| {
                match e {
                    CliError::Usage(m) | CliError::Runtime(m) => eprintln!("{m}"),
                }
                std::process::exit(1);
            })
        };
        let program = plan.program.clone();
        let td3 = td.clone();
        let mut make_devices = move || build_devices(&td3, &program);
        let mut engine = FaultEngine {
            td,
            make_sim: &mut make_sim,
            make_devices: &mut make_devices,
        };
        let golden = engine
            .golden(main_cycles, plan.stall_cycles)
            .map_err(|e| CliError::runtime(e.to_string()))?;
        let final_regs: Vec<u64> = (0..td.regs.len())
            .map(|i| sim.as_reg_access().get64(koika::RegId(i as u32)))
            .collect();
        let outcome = classify(
            &golden,
            &fp.per_cycle,
            &final_regs,
            trip.as_ref().map(|t| t.cycle),
        );
        println!("injection outcome: {outcome}");
    }

    if let (Some(n), "cuttlesim") = (args.trace, args.backend.as_str()) {
        // Tracing uses the VM's stepping API: rebuild a fresh Sim with the
        // same (deterministic) devices, fast-forward, then record the tail.
        let mut traced = Sim::compile_with(
            td,
            &CompileOptions {
                level: plan.level,
                ..CompileOptions::default()
            },
        )
        .map_err(|e| CliError::runtime(format!("cuttlesim compile error: {e}")))?;
        traced.set_dispatch(plan.dispatch);
        let mut devices2 = build_devices(td, &plan.program);
        for cycle in 0..main_cycles {
            for d in devices2.iter_mut() {
                d.tick(cycle, traced.as_reg_access());
            }
            traced.cycle();
        }
        let trace = {
            let mut dev_refs: Vec<&mut dyn Device> = devices2
                .iter_mut()
                .map(|d| &mut **d as &mut dyn Device)
                .collect();
            RuleTrace::record(&mut traced, &mut dev_refs, n)
        };
        println!("\nRule activity (last {n} cycles):\n{trace}");
    }

    if args.profile && args.backend == "cuttlesim" {
        // The profile lives in the Sim; re-run quickly to fetch it when the
        // box has been consumed by tracing above.
        let mut profiled = Sim::compile_with(
            td,
            &CompileOptions {
                level: plan.level,
                ..CompileOptions::default()
            },
        )
        .map_err(|e| CliError::runtime(format!("cuttlesim compile error: {e}")))?;
        profiled.set_dispatch(plan.dispatch);
        profiled.enable_profiling();
        let mut devices3 = build_devices(td, &plan.program);
        for cycle in 0..main_cycles {
            for d in devices3.iter_mut() {
                d.tick(cycle, profiled.as_reg_access());
            }
            profiled.cycle();
        }
        println!("\n{}", ProfileReport::collect(&profiled));
    }

    if let (Some(path), Some(m)) = (&args.metrics_json, &metrics) {
        let json = m.to_json(true);
        write_file(path, json.as_bytes())?;
        println!("wrote metrics snapshot to {path}");
    }

    if let (Some(path), Some(p)) = (&args.perfetto, &perfetto) {
        let json = p.to_json();
        write_file(path, json.as_bytes())?;
        println!("wrote {} trace events to {path}", p.len());
    }

    if let (Some(path), Some(v)) = (&args.vcd, &vcd) {
        let dump = v.finish(cycles_run);
        write_file(path, dump.as_bytes())?;
        println!("wrote {} bytes of VCD to {path}", dump.len());
    }

    if let Some(t) = trip {
        // Abort with a state dump: registers, cycle, and commit counters in
        // the snapshot's JSON debug form, so the hung state is inspectable.
        eprintln!("{t}");
        eprintln!("{}", sim.snapshot().to_json(Some(td)));
        return Ok(ExitCode::from(3));
    }

    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(Ok(code)) => return code,
        Err(Err(e)) => {
            return match e {
                CliError::Usage(msg) => {
                    eprintln!("{msg}\n{}", usage_hint());
                    ExitCode::from(2)
                }
                CliError::Runtime(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}\n{}", usage_hint());
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
