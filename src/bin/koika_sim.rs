//! `koika-sim`: command-line driver for the bundled designs — simulate on
//! any backend, dump waveforms, profile, trace, or emit C++/Verilog.
//!
//! ```text
//! Usage: koika-sim <design> [options]
//!
//! Designs:
//!   collatz | fir | fft | rv32i | rv32e | rv32i-bp | rv32i-bypass |
//!   rv32i-x0bug | msi | msi-buggy
//!
//! Options:
//!   --backend <interp|cuttlesim|rtl|rtl-static>   (default cuttlesim)
//!   --level <1..6>      Cuttlesim optimization level  (default 6)
//!   --cycles <N>        cycles to run                 (default 10000)
//!   --program <primes:N|nops:N|branchy:N>  core workload (default primes:100)
//!   --vcd <FILE>        record all registers to a VCD file
//!   --profile           print a per-rule work profile (cuttlesim backend)
//!   --trace <N>         print the last N cycles of rule activity
//!   --emit <cpp|cpp-header|verilog>  print generated code and exit
//!   --metrics-json <FILE>  write a JSON metrics snapshot (per-rule counts)
//!   --perfetto <FILE>   write a Chrome-trace/Perfetto rule timeline
//!   --watch <REG>       print a line when REG changes (repeatable)
//!   --help              print this help and exit
//! ```

use cuttlesim::{codegen_cpp, CompileOptions, OptLevel, ProfileReport, RuleTrace, Sim};
use koika::check::check;
use koika::design::Design;
use koika::device::{Device, SimBackend};
use koika::obs::{Fanout, Metrics, Observer, PerfettoTrace, RegWatch};
use koika::vcd::VcdRecorder;
use koika_designs::harness::MEM_WORDS;
use koika_designs::memdev::MagicMemory;
use koika_designs::{msi, rv32, small};
use koika_riscv::programs;
use koika_rtl::{compile as rtl_compile, verilog, RtlSim, Scheme};
use std::process::ExitCode;

struct Args {
    design: String,
    backend: String,
    level: u32,
    cycles: u64,
    program: String,
    vcd: Option<String>,
    profile: bool,
    trace: Option<u64>,
    emit: Option<String>,
    metrics_json: Option<String>,
    perfetto: Option<String>,
    watch: Vec<String>,
}

const HELP: &str = "\
Usage: koika-sim <design> [options]

Designs:
  collatz | fir | fft | rv32i | rv32e | rv32i-bp | rv32i-bypass |
  rv32i-x0bug | msi | msi-buggy

Options:
  --backend <interp|cuttlesim|rtl|rtl-static>   (default cuttlesim)
  --level <1..6>      Cuttlesim optimization level  (default 6)
  --cycles <N>        cycles to run                 (default 10000)
  --program <primes:N|nops:N|branchy:N>  core workload (default primes:100)
  --vcd <FILE>        record all registers to a VCD file
  --profile           print a per-rule work profile (cuttlesim backend)
  --trace <N>         print the last N cycles of rule activity
  --emit <cpp|cpp-header|verilog>  print generated code and exit
  --metrics-json <FILE>  write a JSON metrics snapshot (per-rule fired/failed
                         counts, histograms, cycles/sec)
  --perfetto <FILE>   write a Chrome-trace/Perfetto timeline (one track per
                      rule; open in chrome://tracing or ui.perfetto.dev)
  --watch <REG>       print a line whenever REG changes (repeatable)
  --help              print this help and exit
";

fn usage() -> ExitCode {
    eprintln!(
        "usage: koika-sim <design> [--backend interp|cuttlesim|rtl|rtl-static] \
         [--level 1..6] [--cycles N] [--program primes:N|nops:N|branchy:N] \
         [--vcd FILE] [--profile] [--trace N] [--emit cpp|cpp-header|verilog] \
         [--metrics-json FILE] [--perfetto FILE] [--watch REG]\n\
         try: koika-sim --help"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let Some(design) = argv.next() else {
        return Err(usage());
    };
    if design == "--help" || design == "-h" {
        print!("{HELP}");
        return Err(ExitCode::SUCCESS);
    }
    let mut args = Args {
        design,
        backend: "cuttlesim".into(),
        level: 6,
        cycles: 10_000,
        program: "primes:100".into(),
        vcd: None,
        profile: false,
        trace: None,
        emit: None,
        metrics_json: None,
        perfetto: None,
        watch: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().ok_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--backend" => args.backend = value("--backend")?,
            "--level" => {
                args.level = value("--level")?.parse().map_err(|_| usage())?;
            }
            "--cycles" => {
                args.cycles = value("--cycles")?.parse().map_err(|_| usage())?;
            }
            "--program" => args.program = value("--program")?,
            "--vcd" => args.vcd = Some(value("--vcd")?),
            "--profile" => args.profile = true,
            "--trace" => {
                args.trace = Some(value("--trace")?.parse().map_err(|_| usage())?);
            }
            "--emit" => args.emit = Some(value("--emit")?),
            "--metrics-json" => args.metrics_json = Some(value("--metrics-json")?),
            "--perfetto" => args.perfetto = Some(value("--perfetto")?),
            "--watch" => args.watch.push(value("--watch")?),
            "--help" | "-h" => {
                print!("{HELP}");
                return Err(ExitCode::SUCCESS);
            }
            other => {
                eprintln!("unknown option {other}");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn design_by_name(name: &str) -> Option<Design> {
    Some(match name {
        "collatz" => small::collatz(),
        "fir" => small::fir(),
        "fft" => small::fft(),
        "rv32i" => rv32::rv32i(),
        "rv32e" => rv32::rv32e(),
        "rv32i-bp" => rv32::rv32i_bp(),
        "rv32i-bypass" => rv32::rv32i_bypass(),
        "rv32i-x0bug" => rv32::rv32i_x0bug(),
        "msi" => msi::msi_system(),
        "msi-buggy" => msi::msi_system_buggy(),
        _ => return None,
    })
}

fn workload(spec: &str) -> Option<Vec<u32>> {
    let (kind, n) = spec.split_once(':')?;
    let n: u32 = n.parse().ok()?;
    Some(match kind {
        "primes" => programs::primes(n),
        "nops" => programs::nops(n as usize),
        "branchy" => programs::branchy(n),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let Some(design) = design_by_name(&args.design) else {
        eprintln!("unknown design {:?}", args.design);
        return usage();
    };
    let td = match check(&design) {
        Ok(td) => td,
        Err(e) => {
            eprintln!("design error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(what) = &args.emit {
        match what.as_str() {
            "cpp" => print!("{}", codegen_cpp::emit(&td)),
            "cpp-header" => print!("{}", codegen_cpp::emit_runtime_header()),
            "verilog" => match rtl_compile(&td, Scheme::Dynamic) {
                Ok(model) => print!("{}", verilog::emit(&model)),
                Err(e) => {
                    eprintln!("rtl error: {e}");
                    return ExitCode::FAILURE;
                }
            },
            _ => return usage(),
        }
        return ExitCode::SUCCESS;
    }

    // Devices: cores get a magic memory preloaded with the workload.
    let mut devices: Vec<Box<dyn Device>> = Vec::new();
    if args.design.starts_with("rv32") {
        let Some(program) = workload(&args.program) else {
            eprintln!("bad --program spec {:?}", args.program);
            return usage();
        };
        devices.push(Box::new(MagicMemory::new(
            &td,
            &["imem", "dmem"],
            &program,
            MEM_WORDS,
        )));
    }
    let mut vcd = args
        .vcd
        .as_ref()
        .map(|_| VcdRecorder::all_registers(&td));

    let level = match args.level {
        1 => OptLevel::SplitRwSets,
        2 => OptLevel::AccumulatedLogs,
        3 => OptLevel::ResetOnFailure,
        4 => OptLevel::MergedData,
        5 => OptLevel::NoBocState,
        6 => OptLevel::DesignSpecific,
        _ => return usage(),
    };

    let mut sim: Box<dyn SimBackend> = match args.backend.as_str() {
        "interp" => Box::new(koika::Interp::new(&td)),
        "cuttlesim" => {
            let mut sim = Sim::compile_with(
                &td,
                &CompileOptions {
                    level,
                    ..CompileOptions::default()
                },
            )
            .expect("bundled designs compile");
            if args.profile {
                sim.enable_profiling();
            }
            Box::new(sim)
        }
        "rtl" => Box::new(RtlSim::new(
            rtl_compile(&td, Scheme::Dynamic).expect("bundled designs compile"),
        )),
        "rtl-static" => Box::new(RtlSim::new(
            rtl_compile(&td, Scheme::Static).expect("bundled designs compile"),
        )),
        _ => return usage(),
    };

    // Observability sinks, attached only when asked for — unobserved runs
    // take the plain `cycle()` path below.
    let mut metrics = args.metrics_json.as_ref().map(|_| Metrics::for_design(&td));
    let mut perfetto = args.perfetto.as_ref().map(|_| PerfettoTrace::for_design(&td));
    let mut watch = if args.watch.is_empty() {
        None
    } else {
        let mut watched = Vec::new();
        for name in &args.watch {
            let Some(i) = td.regs.iter().position(|r| &r.name == name) else {
                eprintln!("unknown register {name:?} in --watch");
                return usage();
            };
            watched.push((koika::RegId(i as u32), name.clone()));
        }
        Some(RegWatch::printing(watched))
    };

    let start = std::time::Instant::now();
    let main_cycles = args.cycles.saturating_sub(args.trace.unwrap_or(0));
    {
        let mut sinks: Vec<&mut dyn Observer> = Vec::new();
        if let Some(m) = &mut metrics {
            sinks.push(m);
        }
        if let Some(p) = &mut perfetto {
            sinks.push(p);
        }
        if let Some(w) = &mut watch {
            sinks.push(w);
        }
        let mut fan = if sinks.is_empty() {
            None
        } else {
            Some(Fanout::new(sinks))
        };
        for cycle in 0..main_cycles {
            for d in devices.iter_mut() {
                d.tick(cycle, sim.as_reg_access());
            }
            if let Some(v) = &mut vcd {
                v.tick(cycle, sim.as_reg_access());
            }
            match &mut fan {
                Some(f) => sim.cycle_obs(f),
                None => sim.cycle(),
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "{}: {} cycles on {} in {:.3}s ({:.0} cycles/s), {} rule commits",
        td.name,
        sim.cycle_count(),
        args.backend,
        elapsed,
        main_cycles as f64 / elapsed.max(1e-9),
        sim.rules_fired()
    );

    // Design-specific summary lines.
    if args.design.starts_with("rv32") {
        let retired = sim.as_reg_access().get64(td.reg_id("retired"));
        println!(
            "  retired {} instructions (IPC {:.3}), pc = {:#x}",
            retired,
            retired as f64 / sim.cycle_count().max(1) as f64,
            sim.as_reg_access().get64(td.reg_id("pc"))
        );
    }

    if let (Some(n), "cuttlesim") = (args.trace, args.backend.as_str()) {
        // Tracing uses the VM's stepping API: rebuild a fresh Sim with the
        // same (deterministic) devices, fast-forward, then record the tail.
        let mut traced = Sim::compile_with(
            &td,
            &CompileOptions {
                level,
                ..CompileOptions::default()
            },
        )
        .expect("compiles");
        // Deterministic devices: rebuild and fast-forward.
        let mut devices2: Vec<Box<dyn Device>> = Vec::new();
        if args.design.starts_with("rv32") {
            let program = workload(&args.program).expect("validated above");
            devices2.push(Box::new(MagicMemory::new(
                &td,
                &["imem", "dmem"],
                &program,
                MEM_WORDS,
            )));
        }
        for cycle in 0..main_cycles {
            for d in devices2.iter_mut() {
                d.tick(cycle, traced.as_reg_access());
            }
            traced.cycle();
        }
        let trace = {
            let mut dev_refs: Vec<&mut dyn Device> =
                devices2.iter_mut().map(|d| &mut **d as &mut dyn Device).collect();
            RuleTrace::record(&mut traced, &mut dev_refs, n)
        };
        println!("\nRule activity (last {n} cycles):\n{trace}");
    }

    if args.profile && args.backend == "cuttlesim" {
        // The profile lives in the Sim; re-run quickly to fetch it when the
        // box has been consumed by tracing above.
        let mut profiled = Sim::compile_with(
            &td,
            &CompileOptions {
                level,
                ..CompileOptions::default()
            },
        )
        .expect("compiles");
        profiled.enable_profiling();
        let mut devices3: Vec<Box<dyn Device>> = Vec::new();
        if args.design.starts_with("rv32") {
            let program = workload(&args.program).expect("validated above");
            devices3.push(Box::new(MagicMemory::new(
                &td,
                &["imem", "dmem"],
                &program,
                MEM_WORDS,
            )));
        }
        for cycle in 0..main_cycles {
            for d in devices3.iter_mut() {
                d.tick(cycle, profiled.as_reg_access());
            }
            profiled.cycle();
        }
        println!("\n{}", ProfileReport::collect(&profiled));
    }

    if let (Some(path), Some(m)) = (&args.metrics_json, &metrics) {
        let json = m.to_json(true);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics snapshot to {path}");
    }

    if let (Some(path), Some(p)) = (&args.perfetto, &perfetto) {
        let json = p.to_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} trace events to {path}", p.len());
    }

    if let (Some(path), Some(v)) = (&args.vcd, &vcd) {
        let dump = v.finish(main_cycles);
        if let Err(e) = std::fs::write(path, &dump) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} bytes of VCD to {path}", dump.len());
    }

    ExitCode::SUCCESS
}
