//! Workspace umbrella crate for the Cuttlesim reproduction.
//!
//! Re-exports the member crates so the runnable examples and cross-crate
//! integration tests in this package can reach everything; the real APIs
//! live in [`koika`], [`cuttlesim`], [`koika_rtl`], [`koika_riscv`], and
//! [`koika_designs`]. The [`fuzz`] module lives here (not in `koika`)
//! because differential fuzzing spans every backend and therefore needs
//! all the crates at once.

pub mod fuzz;

pub use cuttlesim;
pub use koika;
pub use koika_designs;
pub use koika_riscv;
pub use koika_rtl;
