//! Workspace umbrella crate for the Cuttlesim reproduction.
//!
//! Re-exports the member crates so the runnable examples and cross-crate
//! integration tests in this package can reach everything; the real APIs
//! live in [`koika`], [`cuttlesim`], [`koika_rtl`], [`koika_riscv`], and
//! [`koika_designs`].

pub use cuttlesim;
pub use koika;
pub use koika_designs;
pub use koika_riscv;
pub use koika_rtl;
