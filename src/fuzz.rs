//! Differential fuzzing as a first-class mode: random designs run through
//! every backend, with mismatches, panics, and hangs triaged into
//! deduplicated crash buckets and shrunk to minimal reproducers.
//!
//! Each fuzz *case* is a pure function of `(master seed, case index)`:
//! a [`koika::testgen::random_design`] is generated, type-checked, and run
//! for a fixed cycle budget on the reference interpreter; the per-cycle
//! register-state digests form the reference trace. Every other backend —
//! the Cuttlesim VM at all six optimization levels and the RTL pipeline
//! under both schemes — is then run over the same design; all except
//! `rtl-static` are compared cycle-by-cycle (the static-conflict scheme
//! intentionally schedules more conservatively than the reference
//! semantics, so it is exercised for crashes and compile errors only).
//! Any divergence, compile error, or panic becomes a [`Finding`].
//!
//! Findings dedup into [`Bucket`]s keyed by the *normalized* failure
//! message (digit runs collapsed, so two out-of-bounds panics at different
//! indices coincide) plus the design's
//! [`shape_fingerprint`](koika::testgen::shape_fingerprint) — two seeds
//! whose designs share a register/rule shape and fail the same way are
//! almost certainly the same root cause. Each bucket's first reproducer is
//! shrunk by binary search to the smallest cycle budget that still
//! exhibits the finding, and can be persisted to a corpus directory in the
//! `koika-fuzz v1` text format; [`replay_corpus_dir`] re-runs checked-in
//! reproducers as a regression suite.
//!
//! Cases are executed through [`koika::runner`], so a backend that panics
//! mid-cycle poisons only its own case, and `--jobs N` fans cases over a
//! worker pool while keeping the report byte-identical to a sequential
//! run (outcomes are pure functions of the seed; wall-clock never enters
//! classification unless a wall budget is explicitly configured).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cuttlesim::{BatchSim, CompileOptions, Dispatch, OptLevel, Sim};
use koika::check::check;
use koika::device::{RegAccess, SimBackend};
use koika::runner::{self, contain, JobError, JobUpdate, RunnerConfig, RunnerStats};
use koika::testgen::{random_design, shape_fingerprint, SplitMix64};
use koika::tir::{RegId, TDesign};
use koika_rtl::{compile as rtl_compile, RtlSim, Scheme};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Configuration for a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; case `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Cycle budget per case per backend.
    pub cycles: u64,
    /// Worker pool / retry configuration.
    pub runner: RunnerConfig,
    /// Optional wall-clock budget per case. `None` (the default) keeps
    /// classification machine-independent; when set, a case that exceeds
    /// it is retried and, if it keeps tripping, triaged as a hang.
    pub wall_budget: Option<Duration>,
    /// Batched-engine lanes for the six VM levels: `0` runs them as
    /// scalar [`Sim`]s (the historical path), `n >= 1` runs each level as
    /// one [`BatchSim`] whose lane 0 uses the declared initial values
    /// (so its findings are labeled identically to the scalar path) and
    /// whose lanes `1..n` use seed-derived perturbed initial register
    /// values, each compared against its own reference-interpreter run —
    /// deliberately forcing control-flow divergence inside the batch.
    pub batch: usize,
    /// Which VM dispatch engines to include in the matrix: `None` (the
    /// default) compares every level under *all* dispatchers — direct
    /// bytecode match, pre-bound closures, the register-form micro-op
    /// engine, and the compiled-native backend — while `Some(d)` restricts
    /// the VM axis to dispatcher `d` (labels stay distinct, so buckets
    /// never alias across dispatchers). The native dispatcher needs a
    /// `rustc` at run time; when none is available it is excluded from the
    /// matrix (callers should report the exclusion loudly — see
    /// [`cuttlesim::toolchain_available`]).
    pub dispatch: Option<Dispatch>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 16,
            cycles: 96,
            runner: RunnerConfig::default(),
            wall_budget: None,
            batch: 0,
            dispatch: None,
        }
    }
}

/// The per-case seed: a pure function of the master seed and case index.
pub fn case_seed(master: u64, index: usize) -> u64 {
    SplitMix64::new(master.wrapping_add(index as u64)).next_u64()
}

/// What went wrong on one backend of one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The backend's trace diverged from the reference interpreter at
    /// this cycle (0-based).
    Mismatch {
        /// First divergent cycle.
        cycle: u64,
    },
    /// The backend panicked (compile or run).
    Panic {
        /// The contained panic message.
        message: String,
    },
    /// The backend refused the design with a (non-panic) compile error.
    Build {
        /// The error rendering.
        message: String,
    },
    /// The whole case exceeded its wall budget even after retries.
    Hang {
        /// The last watchdog/retry message.
        message: String,
    },
}

impl FindingKind {
    fn class(&self) -> &'static str {
        match self {
            FindingKind::Mismatch { .. } => "mismatch",
            FindingKind::Panic { .. } => "panic",
            FindingKind::Build { .. } => "build",
            FindingKind::Hang { .. } => "hang",
        }
    }

    fn message(&self) -> String {
        match self {
            FindingKind::Mismatch { cycle } => format!("first divergence at cycle {cycle}"),
            FindingKind::Panic { message }
            | FindingKind::Build { message }
            | FindingKind::Hang { message } => message.clone(),
        }
    }
}

/// One triaged failure on one backend of one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Backend label (`interp`, `O1`..`O6`, `rtl`, `rtl-static`, or
    /// `case` for whole-case hangs).
    pub backend: String,
    /// Failure class and payload.
    pub kind: FindingKind,
}

impl Finding {
    /// The deduplication key: class, backend, and normalized message
    /// (digit runs collapsed to `#` so unstable indices/addresses don't
    /// split buckets).
    pub fn key(&self) -> String {
        let norm = match &self.kind {
            // The divergence cycle is part of the *reproducer*, not the
            // root cause; mismatches on the same backend bucket together.
            FindingKind::Mismatch { .. } => String::new(),
            k => normalize_message(&k.message()),
        };
        format!("{}:{}:{}", self.kind.class(), self.backend, norm)
    }
}

/// Collapses digit runs to `#` and truncates, so panic messages that
/// differ only in indices, widths, or addresses share a bucket key.
fn normalize_message(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len().min(120));
    let mut in_digits = false;
    for c in msg.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(if c == '\n' { ' ' } else { c });
        }
        if out.len() >= 120 {
            break;
        }
    }
    out
}

/// The outcome of running one case on every backend.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The derived per-case seed.
    pub seed: u64,
    /// Shape fingerprint of the generated design (0 if generation or
    /// checking itself failed).
    pub shape: u64,
    /// All findings; empty means every backend agreed for every cycle.
    pub findings: Vec<Finding>,
}

/// A deduplicated group of equivalent findings, with a shrunk reproducer.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// The dedup key (see [`Finding::key`], suffixed with the shape
    /// fingerprint).
    pub key: String,
    /// Backend the finding occurred on.
    pub backend: String,
    /// Failure class (`mismatch`/`panic`/`build`/`hang`).
    pub class: String,
    /// Shape fingerprint shared by the bucketed designs.
    pub shape: u64,
    /// Seeds of every case that hit this bucket, in case order.
    pub seeds: Vec<u64>,
    /// Representative message from the first occurrence.
    pub message: String,
    /// Minimal reproducer: seed of the first occurrence plus the
    /// smallest cycle budget that still exhibits the finding.
    pub repro_seed: u64,
    /// Shrunk cycle budget for the reproducer.
    pub repro_cycles: u64,
}

/// The full result of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The configuration's master seed.
    pub seed: u64,
    /// Cases executed.
    pub cases: usize,
    /// Cycle budget per case.
    pub cycles: u64,
    /// Cases with no findings at all.
    pub clean: usize,
    /// Deduplicated buckets, ordered by key.
    pub buckets: Vec<Bucket>,
}

impl FuzzReport {
    /// A stable, human- and machine-readable summary. Byte-identical for
    /// a given `(seed, cases, cycles)` regardless of worker count.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzz seed 0x{:x} cases {} cycles {}",
            self.seed, self.cases, self.cycles
        );
        let _ = writeln!(s, "clean   {:>6}", self.clean);
        let _ = writeln!(s, "buckets {:>6}", self.buckets.len());
        for b in &self.buckets {
            let _ = writeln!(s, "bucket {}", b.key);
            let _ = writeln!(s, "  class   {}", b.class);
            let _ = writeln!(s, "  backend {}", b.backend);
            let _ = writeln!(s, "  shape   0x{:016x}", b.shape);
            let _ = writeln!(s, "  hits    {}", b.seeds.len());
            let _ = writeln!(s, "  message {}", b.message);
            let _ = writeln!(
                s,
                "  repro   seed 0x{:x} cycles {}",
                b.repro_seed, b.repro_cycles
            );
        }
        s
    }
}

/// Every backend a case is compared on, beyond the reference interpreter.
#[derive(Debug, Clone, Copy)]
enum BackendId {
    Vm(OptLevel, Dispatch),
    Rtl(Scheme),
}

impl BackendId {
    /// The comparison matrix: every VM level under the requested
    /// dispatchers (`None` = all four), then both RTL schemes. Match
    /// comes first per level so bucket labels of pre-existing corpus
    /// entries (`O1`..`O6`) are produced before the suffixed variants.
    /// The native dispatcher is included only when a `rustc` toolchain is
    /// available — `set_dispatch` would otherwise panic inside the
    /// containment harness and every case would triage as a spurious
    /// panic. Callers that were explicitly asked for `native` check the
    /// toolchain themselves and skip loudly.
    fn all(dispatch: Option<Dispatch>) -> Vec<BackendId> {
        let mut v = Vec::new();
        for &level in OptLevel::ALL.iter() {
            for &d in Dispatch::ALL.iter() {
                if d == Dispatch::Native && !cuttlesim::toolchain_available() {
                    continue;
                }
                if dispatch.is_none() || dispatch == Some(d) {
                    v.push(BackendId::Vm(level, d));
                }
            }
        }
        v.push(BackendId::Rtl(Scheme::Dynamic));
        v.push(BackendId::Rtl(Scheme::Static));
        v
    }

    /// Bucket label. Match keeps the bare level name (`O4`) so labels —
    /// and therefore checked-in corpus keys — are unchanged from before
    /// the dispatch axis existed; the other dispatchers get a suffix.
    fn label(self) -> String {
        match self {
            BackendId::Vm(level, Dispatch::Match) => level.short_name().to_string(),
            BackendId::Vm(level, d) => format!("{}-{}", level.short_name(), d.short_name()),
            BackendId::Rtl(Scheme::Dynamic) => "rtl".to_string(),
            BackendId::Rtl(Scheme::Static) => "rtl-static".to_string(),
        }
    }

    /// Whether this backend promises cycle-exact agreement with the
    /// reference interpreter. The Bluespec-style static-conflict scheme
    /// does not — its conservative conflict matrix may block rules the
    /// dynamic semantics would fire — so it is run (panics and compile
    /// errors still triage) but its trace is not compared.
    fn compares_traces(self) -> bool {
        !matches!(self, BackendId::Rtl(Scheme::Static))
    }

    fn build(self, td: &TDesign) -> Result<Box<dyn SimBackend>, String> {
        match self {
            BackendId::Vm(level, dispatch) => Sim::compile_with(
                td,
                &CompileOptions {
                    level,
                    ..CompileOptions::default()
                },
            )
            .map(|mut s| {
                s.set_dispatch(dispatch);
                Box::new(s) as Box<dyn SimBackend>
            })
            .map_err(|e| e.to_string()),
            BackendId::Rtl(scheme) => rtl_compile(td, scheme)
                .map(|m| Box::new(RtlSim::new(m)) as Box<dyn SimBackend>)
                .map_err(|e| e.to_string()),
        }
    }
}

/// Runs a simulator for `cycles` cycles, digesting the full register file
/// after each cycle. The digest stream is what backends are compared on.
fn state_trace(td: &TDesign, sim: &mut dyn SimBackend, cycles: u64) -> Vec<u64> {
    let mut trace = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        sim.cycle();
        let mut h = FNV_OFFSET;
        for i in 0..td.regs.len() {
            let v = sim.as_reg_access().get64(RegId(i as u32));
            h = (h ^ v).wrapping_mul(FNV_PRIME);
        }
        trace.push(h);
    }
    trace
}

/// Runs one case: generates the design for `seed`, takes the reference
/// trace on the interpreter, and compares every other backend against it.
/// All backend work runs under panic containment, so a poisoned design
/// that makes one backend panic mid-cycle produces a [`Finding`], not an
/// abort.
pub fn run_case(seed: u64, cycles: u64) -> CaseResult {
    run_case_dispatch(seed, cycles, None)
}

/// [`run_case`] with the VM axis restricted to one dispatcher
/// (`None` = all four; see [`FuzzConfig::dispatch`]).
pub fn run_case_dispatch(seed: u64, cycles: u64, dispatch: Option<Dispatch>) -> CaseResult {
    let mut findings = Vec::new();

    let Some((td, shape)) = case_design(seed, &mut findings) else {
        return CaseResult {
            seed,
            shape: 0,
            findings,
        };
    };

    let reference = match contain(|| {
        let mut sim = koika::Interp::new(&td);
        state_trace(&td, &mut sim, cycles)
    }) {
        Ok(trace) => trace,
        Err(msg) => {
            findings.push(Finding {
                backend: "interp".to_string(),
                kind: FindingKind::Panic { message: msg },
            });
            return CaseResult {
                seed,
                shape,
                findings,
            };
        }
    };

    for backend in BackendId::all(dispatch) {
        let run = contain(|| {
            backend
                .build(&td)
                .map(|mut sim| state_trace(&td, sim.as_mut(), cycles))
        });
        match run {
            Ok(Ok(trace)) => {
                if !backend.compares_traces() {
                    continue;
                }
                if let Some(cycle) = reference.iter().zip(&trace).position(|(a, b)| a != b) {
                    findings.push(Finding {
                        backend: backend.label(),
                        kind: FindingKind::Mismatch {
                            cycle: cycle as u64,
                        },
                    });
                }
            }
            Ok(Err(message)) => findings.push(Finding {
                backend: backend.label(),
                kind: FindingKind::Build { message },
            }),
            Err(message) => findings.push(Finding {
                backend: backend.label(),
                kind: FindingKind::Panic { message },
            }),
        }
    }

    CaseResult {
        seed,
        shape,
        findings,
    }
}

/// Generates and type-checks the design for one case, recording a finding
/// and returning `None` when generation or checking itself fails.
fn case_design(seed: u64, findings: &mut Vec<Finding>) -> Option<(TDesign, u64)> {
    match contain(|| check(&random_design(seed)).map_err(|e| e.to_string())) {
        Ok(Ok(td)) => {
            let shape = shape_fingerprint(&td);
            Some((td, shape))
        }
        Ok(Err(e)) => {
            findings.push(Finding {
                backend: "check".to_string(),
                kind: FindingKind::Build { message: e },
            });
            None
        }
        Err(msg) => {
            findings.push(Finding {
                backend: "testgen".to_string(),
                kind: FindingKind::Panic { message: msg },
            });
            None
        }
    }
}

/// Overwrites every register of lane `lane` with a seed-derived random
/// value (lane 0 keeps the declared reset values). The same derivation
/// seeds both the batched lanes and their reference-interpreter runs, so
/// the two always start from identical state.
fn perturb_regs(td: &TDesign, seed: u64, lane: usize, set: &mut dyn FnMut(RegId, u64)) {
    if lane == 0 {
        return;
    }
    let mut rng = SplitMix64::new(seed ^ (lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    for r in 0..td.regs.len() {
        set(RegId(r as u32), rng.next_u64());
    }
}

/// Backend label for a batched-lane finding: lane 0 keeps the scalar
/// label so `batch == 1` reports are byte-identical to scalar reports;
/// perturbed lanes get a `/laneN` suffix (no `@`, which would collide
/// with the bucket-key shape separator).
fn lane_label(backend: BackendId, lane: usize) -> String {
    if lane == 0 {
        backend.label()
    } else {
        format!("{}/lane{lane}", backend.label())
    }
}

/// Compiles one VM level as a batched engine and returns one state-digest
/// trace per lane. `Err((true, _))` is a compile refusal, `Err((false, _))`
/// a runtime engine error (miscompiled bytecode trap).
fn batched_traces(
    td: &TDesign,
    level: OptLevel,
    dispatch: Dispatch,
    seed: u64,
    cycles: u64,
    lanes: usize,
) -> Result<Vec<Vec<u64>>, (bool, String)> {
    let mut sim = BatchSim::compile_with(
        td,
        &CompileOptions {
            level,
            ..CompileOptions::default()
        },
        lanes,
    )
    .map_err(|e| (true, e.to_string()))?;
    sim.set_dispatch(dispatch);
    for l in 1..lanes {
        perturb_regs(td, seed, l, &mut |r, v| sim.lane_set64(l, r, v));
    }
    let mut traces = vec![Vec::with_capacity(cycles as usize); lanes];
    for _ in 0..cycles {
        sim.cycle().map_err(|e| (false, e.to_string()))?;
        for (l, t) in traces.iter_mut().enumerate() {
            let mut h = FNV_OFFSET;
            for r in 0..td.regs.len() {
                h = (h ^ sim.lane_get64(l, RegId(r as u32))).wrapping_mul(FNV_PRIME);
            }
            t.push(h);
        }
    }
    Ok(traces)
}

/// Runs one case with the six VM levels executed as *batched* lock-step
/// engines over `lanes` instances (see [`FuzzConfig::batch`]): lane 0
/// replays the scalar comparison against the declared reset state, lanes
/// `1..` start from perturbed register values, and every lane is compared
/// cycle-by-cycle against its own reference-interpreter run. The RTL
/// backends have no batched engine and run exactly as in [`run_case`].
pub fn run_case_batched(
    seed: u64,
    cycles: u64,
    lanes: usize,
    dispatch: Option<Dispatch>,
) -> CaseResult {
    let lanes = lanes.max(1);
    let mut findings = Vec::new();

    let Some((td, shape)) = case_design(seed, &mut findings) else {
        return CaseResult {
            seed,
            shape: 0,
            findings,
        };
    };

    let refs = match contain(|| {
        (0..lanes)
            .map(|l| {
                let mut sim = koika::Interp::new(&td);
                perturb_regs(&td, seed, l, &mut |r, v| sim.set64(r, v));
                state_trace(&td, &mut sim, cycles)
            })
            .collect::<Vec<_>>()
    }) {
        Ok(r) => r,
        Err(msg) => {
            findings.push(Finding {
                backend: "interp".to_string(),
                kind: FindingKind::Panic { message: msg },
            });
            return CaseResult {
                seed,
                shape,
                findings,
            };
        }
    };

    for backend in BackendId::all(dispatch) {
        let (level, vm_dispatch) = match backend {
            BackendId::Vm(level, d) => (level, d),
            BackendId::Rtl(_) => {
                // Scalar path, identical to `run_case`.
                let run = contain(|| {
                    backend
                        .build(&td)
                        .map(|mut sim| state_trace(&td, sim.as_mut(), cycles))
                });
                match run {
                    Ok(Ok(trace)) => {
                        if backend.compares_traces() {
                            if let Some(cycle) =
                                refs[0].iter().zip(&trace).position(|(a, b)| a != b)
                            {
                                findings.push(Finding {
                                    backend: backend.label(),
                                    kind: FindingKind::Mismatch {
                                        cycle: cycle as u64,
                                    },
                                });
                            }
                        }
                    }
                    Ok(Err(message)) => findings.push(Finding {
                        backend: backend.label(),
                        kind: FindingKind::Build { message },
                    }),
                    Err(message) => findings.push(Finding {
                        backend: backend.label(),
                        kind: FindingKind::Panic { message },
                    }),
                }
                continue;
            }
        };
        match contain(|| batched_traces(&td, level, vm_dispatch, seed, cycles, lanes)) {
            Ok(Ok(traces)) => {
                for (l, trace) in traces.iter().enumerate() {
                    if let Some(cycle) = refs[l].iter().zip(trace).position(|(a, b)| a != b) {
                        findings.push(Finding {
                            backend: lane_label(backend, l),
                            kind: FindingKind::Mismatch {
                                cycle: cycle as u64,
                            },
                        });
                    }
                }
            }
            Ok(Err((is_build, message))) => findings.push(Finding {
                backend: backend.label(),
                kind: if is_build {
                    FindingKind::Build { message }
                } else {
                    FindingKind::Panic { message }
                },
            }),
            Err(message) => findings.push(Finding {
                backend: backend.label(),
                kind: FindingKind::Panic { message },
            }),
        }
    }

    CaseResult {
        seed,
        shape,
        findings,
    }
}

/// Runs one case with the engine the configuration selects: the scalar
/// path when `batch == 0`, the batched VM levels otherwise.
pub fn run_case_with(
    seed: u64,
    cycles: u64,
    batch: usize,
    dispatch: Option<Dispatch>,
) -> CaseResult {
    if batch == 0 {
        run_case_dispatch(seed, cycles, dispatch)
    } else {
        run_case_batched(seed, cycles, batch, dispatch)
    }
}

/// A concrete first point of disagreement between the reference
/// interpreter and one backend on a fuzz case — the raw material for
/// `--debug-on-divergence`, which drops a debugger exactly here.
pub struct Divergence {
    /// The case seed.
    pub seed: u64,
    /// Label of the diverging backend (`O4-tac`, `rtl-static`, ...).
    pub backend: String,
    /// 0-based index of the first cycle whose post-cycle register state
    /// differs (the state at cycle boundary `cycle + 1`).
    pub cycle: u64,
    /// The interpreter's full register file after that cycle.
    pub interp_regs: Vec<u64>,
    /// The diverging backend's full register file after that cycle.
    pub backend_regs: Vec<u64>,
    /// The generated design, so callers can attach a debugger without
    /// re-deriving it from the seed.
    pub td: TDesign,
}

/// Builds the backend a fuzz bucket label names, for re-running a
/// reproducer under the debugger. Accepts `interp`, `O1`..`O6` with an
/// optional `-closure`/`-tac`/`-native` suffix, `rtl`, and `rtl-static`.
///
/// # Errors
///
/// Unknown labels and backend compile errors.
pub fn build_backend_by_label(
    td: &TDesign,
    label: &str,
) -> Result<Box<dyn SimBackend>, String> {
    if label == "interp" {
        return Ok(Box::new(koika::Interp::new(td)));
    }
    for id in BackendId::all(None) {
        if id.label() == label {
            return id.build(td);
        }
    }
    Err(format!("unknown backend label '{label}'"))
}

/// Re-runs the case for `seed`, comparing every backend's full register
/// file against the reference interpreter cycle by cycle — including
/// `rtl-static`, whose conservative static-conflict scheduling the
/// normal fuzz loop deliberately exempts from trace comparison. Returns
/// the first divergence of the first diverging backend (backends in
/// [`BackendId::all`] order), or `None` when every backend agrees for
/// the whole budget.
///
/// # Errors
///
/// Design generation/type-check failures and backend compile errors.
pub fn scan_divergence(seed: u64, cycles: u64) -> Result<Option<Divergence>, String> {
    let td = check(&random_design(seed)).map_err(|e| e.to_string())?;
    let nregs = td.regs.len();
    let regs_of = |sim: &mut dyn SimBackend| -> Vec<u64> {
        (0..nregs)
            .map(|i| sim.as_reg_access().get64(RegId(i as u32)))
            .collect()
    };
    let mut interp = koika::Interp::new(&td);
    let mut reference = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        interp.cycle();
        reference.push(regs_of(&mut interp));
    }
    for id in BackendId::all(None) {
        let mut sim = id.build(&td)?;
        for (c, want) in reference.iter().enumerate() {
            sim.cycle();
            let got = regs_of(sim.as_mut());
            if &got != want {
                return Ok(Some(Divergence {
                    seed,
                    backend: id.label(),
                    cycle: c as u64,
                    interp_regs: want.clone(),
                    backend_regs: got,
                    td,
                }));
            }
        }
    }
    Ok(None)
}

/// Shrinks a reproducer: the smallest cycle budget in `[1, cycles]` at
/// which `run_case(seed, n)` still yields a finding with the same key.
/// Findings are monotone in the cycle budget (traces are prefixes of each
/// other and panics happen at a fixed cycle), so binary search applies.
fn shrink_cycles(seed: u64, cycles: u64, key: &str, batch: usize, dispatch: Option<Dispatch>) -> u64 {
    let reproduces = |n: u64| -> bool {
        run_case_with(seed, n, batch, dispatch)
            .findings
            .iter()
            .any(|f| f.key() == key)
    };
    // Compile-time findings reproduce with zero cycles.
    if reproduces(0) {
        return 0;
    }
    let (mut lo, mut hi) = (1u64, cycles);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reproduces(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Runs the whole fuzz campaign through the parallel runner and triages
/// the results. `progress` (if any) receives per-job updates, suitable
/// for stderr reporting.
pub fn run_fuzz(
    cfg: &FuzzConfig,
    progress: Option<&mut dyn FnMut(JobUpdate)>,
) -> (FuzzReport, RunnerStats) {
    let (reports, stats) = runner::run_jobs(
        cfg.cases,
        &cfg.runner,
        |i| {
            let seed = case_seed(cfg.seed, i);
            let started = Instant::now();
            let result = run_case_with(seed, cfg.cycles, cfg.batch, cfg.dispatch);
            if let Some(budget) = cfg.wall_budget {
                let spent = started.elapsed();
                if spent > budget {
                    return Err(JobError::Transient(format!(
                        "case 0x{seed:x} exceeded wall budget ({spent:?} > {budget:?})"
                    )));
                }
            }
            Ok(result)
        },
        progress,
    );

    // Triage. Reports come back in case order, so bucket contents (and
    // therefore the summary) are independent of the worker count.
    let mut clean = 0usize;
    let mut buckets: BTreeMap<String, Bucket> = BTreeMap::new();
    for (i, report) in reports.iter().enumerate() {
        let case = match &report.result {
            Ok(case) => case.clone(),
            Err(err) => {
                // The runner gave up on the whole case: a wall-budget
                // trip that survived retries (hang) or a panic in the
                // harness itself outside `contain` (panic).
                let kind = match err {
                    JobError::Transient(m) => FindingKind::Hang { message: m.clone() },
                    JobError::Panic(m) | JobError::Fatal(m) => {
                        FindingKind::Panic { message: m.clone() }
                    }
                };
                CaseResult {
                    seed: case_seed(cfg.seed, i),
                    shape: 0,
                    findings: vec![Finding {
                        backend: "case".to_string(),
                        kind,
                    }],
                }
            }
        };
        if case.findings.is_empty() {
            clean += 1;
            continue;
        }
        for f in &case.findings {
            let key = format!("{}@{:016x}", f.key(), case.shape);
            let entry = buckets.entry(key.clone()).or_insert_with(|| Bucket {
                key,
                backend: f.backend.clone(),
                class: f.kind.class().to_string(),
                shape: case.shape,
                seeds: Vec::new(),
                message: f.kind.message(),
                repro_seed: case.seed,
                repro_cycles: cfg.cycles,
            });
            entry.seeds.push(case.seed);
        }
    }

    // Shrink each bucket's first reproducer. Hang buckets are wall-clock
    // artifacts — re-running them is expensive and non-deterministic, so
    // they keep the full budget.
    for bucket in buckets.values_mut() {
        if bucket.class != "hang" {
            let finding_key = bucket
                .key
                .rsplit_once('@')
                .map(|(k, _)| k.to_string())
                .unwrap_or_else(|| bucket.key.clone());
            bucket.repro_cycles =
                shrink_cycles(bucket.repro_seed, cfg.cycles, &finding_key, cfg.batch, cfg.dispatch);
        }
    }

    let report = FuzzReport {
        seed: cfg.seed,
        cases: cfg.cases,
        cycles: cfg.cycles,
        clean,
        buckets: buckets.into_values().collect(),
    };
    (report, stats)
}

/// What a corpus entry asserts when replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// All backends must agree for the full cycle budget (a regression
    /// test for a formerly-failing seed, or a pinned known-good seed).
    Agree,
    /// A finding whose key starts with this prefix must still reproduce
    /// (a tracked open bug).
    Finding(String),
}

/// A parsed `koika-fuzz v1` corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The case seed.
    pub seed: u64,
    /// Cycle budget to replay with.
    pub cycles: u64,
    /// What replay asserts.
    pub expect: Expectation,
}

const CORPUS_MAGIC: &str = "koika-fuzz v1";

impl CorpusEntry {
    /// Renders the entry in the `koika-fuzz v1` text format.
    pub fn to_text(&self, comment: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{CORPUS_MAGIC}");
        if !comment.is_empty() {
            for line in comment.lines() {
                let _ = writeln!(s, "# {line}");
            }
        }
        let _ = writeln!(s, "seed 0x{:x}", self.seed);
        let _ = writeln!(s, "cycles {}", self.cycles);
        match &self.expect {
            Expectation::Agree => {
                let _ = writeln!(s, "expect agree");
            }
            Expectation::Finding(prefix) => {
                let _ = writeln!(s, "expect finding {prefix}");
            }
        }
        s
    }

    /// Parses the `koika-fuzz v1` text format.
    pub fn from_text(text: &str) -> Result<CorpusEntry, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == CORPUS_MAGIC => {}
            other => {
                return Err(format!(
                    "bad corpus header: expected {CORPUS_MAGIC:?}, got {other:?}"
                ))
            }
        }
        let mut seed = None;
        let mut cycles = None;
        let mut expect = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
            match kw {
                "seed" => {
                    let rest = rest.trim();
                    let v = rest
                        .strip_prefix("0x")
                        .map(|h| u64::from_str_radix(h, 16))
                        .unwrap_or_else(|| rest.parse());
                    seed = Some(v.map_err(|e| format!("bad seed {rest:?}: {e}"))?);
                }
                "cycles" => {
                    cycles = Some(
                        rest.trim()
                            .parse()
                            .map_err(|e| format!("bad cycles {rest:?}: {e}"))?,
                    );
                }
                "expect" => {
                    let rest = rest.trim();
                    expect = Some(if rest == "agree" {
                        Expectation::Agree
                    } else if let Some(prefix) = rest.strip_prefix("finding ") {
                        Expectation::Finding(prefix.trim().to_string())
                    } else {
                        return Err(format!("bad expect line: {rest:?}"));
                    });
                }
                other => return Err(format!("unknown corpus keyword {other:?}")),
            }
        }
        Ok(CorpusEntry {
            seed: seed.ok_or("missing seed line")?,
            cycles: cycles.ok_or("missing cycles line")?,
            expect: expect.ok_or("missing expect line")?,
        })
    }

    /// Replays the entry and checks its expectation.
    pub fn replay(&self) -> Result<(), String> {
        let case = run_case(self.seed, self.cycles);
        match &self.expect {
            Expectation::Agree => {
                if case.findings.is_empty() {
                    Ok(())
                } else {
                    let keys: Vec<String> = case.findings.iter().map(|f| f.key()).collect();
                    Err(format!(
                        "expected all backends to agree, found: {}",
                        keys.join(", ")
                    ))
                }
            }
            Expectation::Finding(prefix) => {
                if case.findings.iter().any(|f| f.key().starts_with(prefix)) {
                    Ok(())
                } else if case.findings.is_empty() {
                    Err(format!(
                        "expected a finding with key prefix {prefix:?}, but all backends agree \
                         (bug fixed? flip this entry to `expect agree`)"
                    ))
                } else {
                    let keys: Vec<String> = case.findings.iter().map(|f| f.key()).collect();
                    Err(format!(
                        "expected a finding with key prefix {prefix:?}, found only: {}",
                        keys.join(", ")
                    ))
                }
            }
        }
    }
}

/// Writes one corpus file per bucket into `dir` (created if missing).
/// Returns the written paths, in bucket order.
pub fn write_corpus(dir: &Path, report: &FuzzReport) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for bucket in &report.buckets {
        let mut h = FNV_OFFSET;
        for b in bucket.key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(FNV_PRIME);
        }
        let path = dir.join(format!("bucket-{:08x}.fuzz", h as u32));
        let finding_key = bucket
            .key
            .rsplit_once('@')
            .map(|(k, _)| k.to_string())
            .unwrap_or_else(|| bucket.key.clone());
        let entry = CorpusEntry {
            seed: bucket.repro_seed,
            cycles: bucket.repro_cycles.max(1),
            expect: Expectation::Finding(finding_key),
        };
        let comment = format!(
            "backend {}  class {}  hits {}\n{}",
            bucket.backend,
            bucket.class,
            bucket.seeds.len(),
            bucket.message
        );
        std::fs::write(&path, entry.to_text(&comment))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Replays every `*.fuzz` file in `dir`, in path order. Returns one
/// `(path, result)` pair per entry; unreadable or unparseable files count
/// as failures.
pub fn replay_corpus_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Result<(), String>)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "fuzz"))
        .collect();
    paths.sort();
    let mut results = Vec::new();
    for path in paths {
        let outcome = std::fs::read_to_string(&path)
            .map_err(|e| format!("read error: {e}"))
            .and_then(|text| CorpusEntry::from_text(&text))
            .and_then(|entry| entry.replay());
        results.push((path, outcome));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seeds_produce_no_findings() {
        // Generated designs are contraption-free, so all backends agree.
        for i in 0..4 {
            let case = run_case(case_seed(0xF00D, i), 48);
            let keys: Vec<String> = case.findings.iter().map(|f| f.key()).collect();
            assert!(keys.is_empty(), "case {i}: unexpected findings {keys:?}");
        }
    }

    #[test]
    fn fuzz_report_is_independent_of_worker_count() {
        let mk = |jobs| FuzzConfig {
            seed: 0xBEEF,
            cases: 6,
            cycles: 24,
            runner: RunnerConfig::with_jobs(jobs),
            wall_budget: None,
            batch: 0,
            dispatch: None,
        };
        let (seq, _) = run_fuzz(&mk(1), None);
        let (par, _) = run_fuzz(&mk(4), None);
        assert_eq!(seq.summary(), par.summary());
    }

    #[test]
    fn batched_case_with_one_lane_matches_scalar() {
        for i in 0..3 {
            let seed = case_seed(0xF00D, i);
            let scalar = run_case(seed, 32);
            let batched = run_case_batched(seed, 32, 1, None);
            assert_eq!(scalar.shape, batched.shape, "case {i}");
            assert_eq!(scalar.findings, batched.findings, "case {i}");
        }
    }

    #[test]
    fn batched_lanes_with_perturbed_inits_stay_clean() {
        // Every lane — including the perturbed ones that force divergence
        // fallback inside the batch — must agree with its own
        // reference-interpreter run at every VM level.
        for i in 0..2 {
            let case = run_case_batched(case_seed(0xF00D, i), 32, 4, None);
            let keys: Vec<String> = case.findings.iter().map(|f| f.key()).collect();
            assert!(keys.is_empty(), "case {i}: unexpected findings {keys:?}");
        }
    }

    #[test]
    fn batched_fuzz_report_matches_scalar_at_one_lane() {
        let mk = |batch| FuzzConfig {
            seed: 0xF00D,
            cases: 4,
            cycles: 24,
            runner: RunnerConfig::default(),
            wall_budget: None,
            batch,
            dispatch: None,
        };
        let (scalar, _) = run_fuzz(&mk(0), None);
        let (batched, _) = run_fuzz(&mk(1), None);
        assert_eq!(scalar.summary(), batched.summary());
    }

    #[test]
    fn corpus_entry_round_trips() {
        let entry = CorpusEntry {
            seed: 0xDEAD_BEEF,
            cycles: 17,
            expect: Expectation::Finding("panic:O3:".to_string()),
        };
        let text = entry.to_text("a known bug");
        assert_eq!(CorpusEntry::from_text(&text).unwrap(), entry);

        let agree = CorpusEntry {
            seed: 3,
            cycles: 8,
            expect: Expectation::Agree,
        };
        assert_eq!(
            CorpusEntry::from_text(&agree.to_text("")).unwrap(),
            agree
        );
    }

    #[test]
    fn corpus_parse_rejects_garbage() {
        assert!(CorpusEntry::from_text("not a corpus file").is_err());
        assert!(CorpusEntry::from_text("koika-fuzz v1\nseed 0x1\ncycles 4").is_err());
        assert!(
            CorpusEntry::from_text("koika-fuzz v1\nseed zzz\ncycles 4\nexpect agree").is_err()
        );
    }

    #[test]
    fn message_normalization_collapses_digits() {
        assert_eq!(
            normalize_message("index out of bounds: the len is 12 but the index is 99"),
            "index out of bounds: the len is # but the index is #"
        );
    }

    #[test]
    fn agree_entry_replays_clean() {
        let entry = CorpusEntry {
            seed: case_seed(0xF00D, 0),
            cycles: 32,
            expect: Expectation::Agree,
        };
        entry.replay().expect("pinned seed should stay clean");
    }
}
